"""Coarse flow-level chaos+churn cluster for rebalancer benchmarks.

The full-fidelity :class:`~repro.sim.cluster_engine.ClusterSimulation`
runs every controller stage per vCPU per tick — perfect for tens of
nodes, hopeless for the headline 200-node / 10k-VM scenario.  This
module keeps only the accounting the rebalancer acts on: per-node
committed guarantee MHz vs. *effective* capacity (chaos events degrade
a node for a window, which is exactly what turns an Eq. 7-admissible
placement into guarantee pressure), Poisson VM churn, and pre-copy
migration blackouts.

Every random draw — arrival gaps, templates, lifetimes, chaos event
times/targets/severities — is pre-generated at construction from the
seed (repo convention, cf. :mod:`repro.checking.fuzz`), so a run is a
pure function of its :class:`ChaosConfig` and the rebalance
configuration: same seed, same result, byte for byte.

The accounting itself lives in parallel NumPy arrays indexed by node /
VM slot; :class:`_ChaosNode` and :class:`_ChaosVm` are thin slot-backed
proxies kept for the object-style surface tests and callers use
(``cluster.nodes[x].planned_in_mhz`` etc.).  That makes the three
per-step hot paths at the 1000-node / 50k-VM scale point flat array
work: best-fit admission is one masked reduction instead of a Python
loop over every node, departures pop a heap instead of scanning every
VM, and violation accounting is one vectorized deficit pass.  The
snapshot side has two spellings: :meth:`ChurnChaosCluster.
rebalance_view` (frozen dataclasses, the readable one) and
:meth:`ChurnChaosCluster.rebalance_arrays` (a
:class:`~repro.rebalance.arrays.ClusterStateArrays` built straight
from the live arrays, no per-VM objects; static VM columns are reused
across rounds until an arrival or departure changes the population).

The violation metric is conservative and symmetric: a node whose
committed guarantees exceed its effective capacity cannot honour
*anyone's* vCFS floor, so every hosted VM accrues
``violation_vm_seconds`` for the step; the rebalancer's own migration
stop-and-copy pauses are charged to ``downtime_vm_seconds`` and
included in its headline total, so moving VMs is never free.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.placement.migration import MigrationModel
from repro.rebalance.arrays import ClusterStateArrays
from repro.rebalance.view import ClusterStateView, InFlightView, NodeView, VmView

#: (vcpus, vfreq_mhz, memory_mb, weight) — the small-heavy template mix
#: used by the placement benchmarks (§IV-C scale).
DEFAULT_TEMPLATE_MIX = (
    (2, 500.0, 1024, 24),
    (4, 1200.0, 4096, 2),
    (4, 1800.0, 4096, 1),
)


@dataclass(frozen=True)
class ChaosConfig:
    """One fully-seeded chaos+churn scenario."""

    nodes: int = 200
    duration_s: float = 300.0
    dt_s: float = 1.0
    seed: int = 0
    initial_vms: int = 10_000
    #: Poisson arrival rate; by default sized to hold the population
    #: steady against ``mean_lifetime_s`` departures.
    arrival_rate_per_s: Optional[float] = None
    mean_lifetime_s: float = 1800.0
    #: Cluster-wide Poisson rate of chaos (degradation) events.
    degrade_rate_per_s: float = 0.02
    #: Effective capacity multiplier while an event is active.
    degrade_factor: float = 0.6
    degrade_duration_s: float = 60.0
    #: CHETEMI-like node: 40 logical CPUs x 2400 MHz, 256 GB.
    node_capacity_mhz: float = 96_000.0
    node_fmax_mhz: float = 2400.0
    node_memory_mb: int = 256 * 1024
    template_mix: Tuple[Tuple[int, float, int, int], ...] = DEFAULT_TEMPLATE_MIX

    @property
    def effective_arrival_rate(self) -> float:
        if self.arrival_rate_per_s is not None:
            return self.arrival_rate_per_s
        return self.initial_vms / self.mean_lifetime_s


class _ChaosNode:
    """Slot-backed proxy over the cluster's node accounting arrays.

    Reads and writes land in the same array cells the vectorized run
    loop uses, so the two surfaces can never disagree.
    """

    __slots__ = ("_c", "slot", "node_id", "vms")

    def __init__(self, cluster: "ChurnChaosCluster", slot: int, node_id: str):
        self._c = cluster
        self.slot = slot
        self.node_id = node_id
        self.vms: set = set()

    @property
    def capacity_mhz(self) -> float:
        return float(self._c._n_capacity[self.slot])

    @property
    def fmax_mhz(self) -> float:
        return float(self._c._n_fmax[self.slot])

    @property
    def memory_mb(self) -> int:
        return int(self._c._n_memory[self.slot])

    @property
    def effective_mhz(self) -> float:
        return float(self._c._n_effective[self.slot])

    @effective_mhz.setter
    def effective_mhz(self, value: float) -> None:
        self._c._n_effective[self.slot] = value

    @property
    def committed_mhz(self) -> float:
        return float(self._c._n_committed_mhz[self.slot])

    @committed_mhz.setter
    def committed_mhz(self, value: float) -> None:
        self._c._n_committed_mhz[self.slot] = value

    @property
    def committed_mb(self) -> int:
        return int(self._c._n_committed_mb[self.slot])

    @committed_mb.setter
    def committed_mb(self, value: int) -> None:
        self._c._n_committed_mb[self.slot] = value

    @property
    def planned_in_mhz(self) -> float:
        return float(self._c._n_planned_in_mhz[self.slot])

    @planned_in_mhz.setter
    def planned_in_mhz(self, value: float) -> None:
        self._c._n_planned_in_mhz[self.slot] = value

    @property
    def planned_in_mb(self) -> int:
        return int(self._c._n_planned_in_mb[self.slot])

    @planned_in_mb.setter
    def planned_in_mb(self, value: int) -> None:
        self._c._n_planned_in_mb[self.slot] = value

    @property
    def violation_steps(self) -> int:
        return int(self._c._n_violation_steps[self.slot])

    @violation_steps.setter
    def violation_steps(self, value: int) -> None:
        self._c._n_violation_steps[self.slot] = value


class _ChaosVm:
    """Slot-backed proxy over the cluster's VM arrays."""

    __slots__ = ("_c", "slot", "name")

    def __init__(self, cluster: "ChurnChaosCluster", slot: int, name: str):
        self._c = cluster
        self.slot = slot
        self.name = name

    @property
    def vcpus(self) -> int:
        return int(self._c._v_vcpus[self.slot])

    @property
    def vfreq_mhz(self) -> float:
        return float(self._c._v_vfreq[self.slot])

    @property
    def memory_mb(self) -> int:
        return int(self._c._v_memory[self.slot])

    @property
    def departs_at(self) -> float:
        return float(self._c._v_departs[self.slot])

    @property
    def demand_mhz(self) -> float:
        return float(self._c._v_demand[self.slot])

    @property
    def node_id(self) -> str:
        return self._c._node_ids[int(self._c._v_node[self.slot])]

    @node_id.setter
    def node_id(self, value: str) -> None:
        self._c._v_node[self.slot] = self._c.nodes[value].slot


@dataclass
class _Flight:
    vm_name: str
    source: str
    target: str
    arrives_at: float
    downtime_s: float
    #: Sizes reserved on the target at start, released at completion
    #: even if the VM departs mid-flight.
    demand_mhz: float
    memory_mb: int


@dataclass(frozen=True)
class MigrationStarted:
    """What :meth:`ChurnChaosCluster.start_migration` hands the loop."""

    vm_name: str
    source: str
    target: str
    duration_s: float


@dataclass
class ChaosResult:
    """Headline accounting for one run."""

    config_seed: int
    nodes: int
    duration_s: float
    violation_vm_seconds: float = 0.0
    downtime_vm_seconds: float = 0.0
    migrations: int = 0
    rejected_arrivals: int = 0
    arrivals: int = 0
    departures: int = 0
    chaos_events: int = 0
    final_vms: int = 0
    rebalance_rounds: int = 0

    @property
    def total_bad_vm_seconds(self) -> float:
        """Violation time plus self-inflicted migration downtime."""
        return self.violation_vm_seconds + self.downtime_vm_seconds

    def to_dict(self) -> Dict[str, float]:
        return {
            "violation_vm_seconds": self.violation_vm_seconds,
            "downtime_vm_seconds": self.downtime_vm_seconds,
            "total_bad_vm_seconds": self.total_bad_vm_seconds,
            "migrations": self.migrations,
            "rejected_arrivals": self.rejected_arrivals,
            "arrivals": self.arrivals,
            "departures": self.departures,
            "chaos_events": self.chaos_events,
            "final_vms": self.final_vms,
            "rebalance_rounds": self.rebalance_rounds,
        }


class ChurnChaosCluster:
    """Flow-level chaos cluster implementing the rebalance port."""

    def __init__(
        self,
        config: ChaosConfig,
        migration_model: Optional[MigrationModel] = None,
    ) -> None:
        self.config = config
        self.model = migration_model or MigrationModel()
        self.t = 0.0
        n = config.nodes
        self._n_capacity = np.full(n, config.node_capacity_mhz)
        self._n_fmax = np.full(n, config.node_fmax_mhz)
        self._n_memory = np.full(n, config.node_memory_mb, dtype=np.int64)
        self._n_effective = self._n_capacity.copy()
        self._n_committed_mhz = np.zeros(n)
        self._n_committed_mb = np.zeros(n, dtype=np.int64)
        self._n_planned_in_mhz = np.zeros(n)
        self._n_planned_in_mb = np.zeros(n, dtype=np.int64)
        self._n_violation_steps = np.zeros(n, dtype=np.int64)
        self._n_vm_count = np.zeros(n, dtype=np.int64)
        width = len(str(max(n - 1, 1)))
        # Zero-padded ids ascend with their slots, so slot order is
        # sorted-id order — the ClusterStateArrays invariant for free.
        self._node_ids = tuple(f"node-{i:0{width}d}" for i in range(n))
        self.nodes: Dict[str, _ChaosNode] = {
            node_id: _ChaosNode(self, i, node_id)
            for i, node_id in enumerate(self._node_ids)
        }
        self._node_list = list(self.nodes.values())
        # VM slot store; slots are recycled through a free list as VMs
        # churn, and the arrays double when the population outgrows them.
        cap = max(64, config.initial_vms)
        self._v_vcpus = np.zeros(cap, dtype=np.int64)
        self._v_vfreq = np.zeros(cap)
        self._v_memory = np.zeros(cap, dtype=np.int64)
        self._v_demand = np.zeros(cap)
        self._v_departs = np.zeros(cap)
        self._v_node = np.full(cap, -1, dtype=np.int64)
        self._v_names: List[Optional[str]] = [None] * cap
        self._free_slots = list(range(cap - 1, -1, -1))
        self.vms: Dict[str, _ChaosVm] = {}
        #: (departs_at, name) min-heap — departures pop in time order
        #: instead of scanning every live VM each step.
        self._departures_heap: List[Tuple[float, str]] = []
        #: Bumps whenever the VM *population* changes (not placement);
        #: rebalance_arrays() reuses its static VM columns across rounds
        #: while this holds still.
        self._vm_set_version = 0
        self._arrays_cache: Optional[tuple] = None
        self.in_flight: List[_Flight] = []
        self.result = ChaosResult(
            config_seed=config.seed,
            nodes=config.nodes,
            duration_s=config.duration_s,
        )
        self._vm_seq = 0
        self._pregenerate(random.Random(config.seed))
        for template in self._initial_templates:
            if self._admit(template) is None:
                self.result.rejected_arrivals += 1

    # -- seeded pre-generation ------------------------------------------------

    def _pregenerate(self, rng: random.Random) -> None:
        cfg = self.config
        weights = [w for (_, _, _, w) in cfg.template_mix]
        #: (vcpus, vfreq, memory, lifetime) per initial VM.
        self._initial_templates = [
            self._draw_template(rng, weights, lifetime_from=0.0)
            for _ in range(cfg.initial_vms)
        ]
        #: Arrival stream: (t, vcpus, vfreq, memory, lifetime).
        self._arrivals: List[Tuple[float, int, float, int, float]] = []
        rate = cfg.effective_arrival_rate
        t = 0.0
        while rate > 0:
            t += rng.expovariate(rate)
            if t >= cfg.duration_s:
                break
            vcpus, vfreq, mem, life = self._draw_template(
                rng, weights, lifetime_from=t
            )
            self._arrivals.append((t, vcpus, vfreq, mem, life))
        #: Chaos stream: (start, end, node_index, factor).
        self._chaos: List[Tuple[float, float, int, float]] = []
        t = 0.0
        while cfg.degrade_rate_per_s > 0:
            t += rng.expovariate(cfg.degrade_rate_per_s)
            if t >= cfg.duration_s:
                break
            self._chaos.append((
                t,
                t + cfg.degrade_duration_s,
                rng.randrange(cfg.nodes),
                cfg.degrade_factor,
            ))

    def _draw_template(
        self, rng: random.Random, weights: List[int], *, lifetime_from: float
    ) -> Tuple[int, float, int, float]:
        vcpus, vfreq, mem, _ = rng.choices(
            self.config.template_mix, weights=weights
        )[0]
        lifetime = rng.expovariate(1.0 / self.config.mean_lifetime_s)
        return (vcpus, vfreq, mem, lifetime_from + lifetime)

    # -- placement / lifecycle ------------------------------------------------

    def _grow_vm_arrays(self) -> None:
        cap = len(self._v_names)
        new_cap = cap * 2
        pad = cap
        self._v_vcpus = np.concatenate(
            [self._v_vcpus, np.zeros(pad, dtype=np.int64)]
        )
        self._v_vfreq = np.concatenate([self._v_vfreq, np.zeros(pad)])
        self._v_memory = np.concatenate(
            [self._v_memory, np.zeros(pad, dtype=np.int64)]
        )
        self._v_demand = np.concatenate([self._v_demand, np.zeros(pad)])
        self._v_departs = np.concatenate([self._v_departs, np.zeros(pad)])
        self._v_node = np.concatenate(
            [self._v_node, np.full(pad, -1, dtype=np.int64)]
        )
        self._v_names.extend([None] * pad)
        self._free_slots.extend(range(new_cap - 1, cap - 1, -1))

    def _admit(self, template: Tuple[int, float, int, float]) -> Optional[str]:
        """Best-fit Eq. 7 admission against effective capacity — one
        masked NumPy reduction over all nodes.

        The fit key and tie-break replicate the scalar best-fit exactly:
        minimise ``free - demand`` (same subtraction), ties to the
        lowest node id — which is the lowest slot, which is what
        ``argmin``'s first-occurrence rule returns.
        """
        vcpus, vfreq, mem, departs_at = template
        demand = vcpus * vfreq
        free = (
            self._n_effective - self._n_committed_mhz - self._n_planned_in_mhz
        )
        ok = (demand <= free + 1e-6) & (vfreq <= self._n_fmax)
        ok &= (
            self._n_committed_mb + self._n_planned_in_mb + mem
            <= self._n_memory
        )
        candidates = np.flatnonzero(ok)
        if candidates.size == 0:
            return None
        fit = free[candidates] - demand
        node = self._node_list[int(candidates[np.argmin(fit)])]
        name = f"vm-{self._vm_seq}"
        self._vm_seq += 1
        if not self._free_slots:
            self._grow_vm_arrays()
        slot = self._free_slots.pop()
        self._v_vcpus[slot] = vcpus
        self._v_vfreq[slot] = vfreq
        self._v_memory[slot] = mem
        self._v_demand[slot] = demand
        self._v_departs[slot] = departs_at
        self._v_node[slot] = node.slot
        self._v_names[slot] = name
        self.vms[name] = _ChaosVm(self, slot, name)
        node.vms.add(name)
        self._n_committed_mhz[node.slot] += demand
        self._n_committed_mb[node.slot] += mem
        self._n_vm_count[node.slot] += 1
        heapq.heappush(self._departures_heap, (departs_at, name))
        self._vm_set_version += 1
        return name

    def _destroy(self, vm_name: str) -> None:
        vm = self.vms.pop(vm_name)
        slot = vm.slot
        node_slot = int(self._v_node[slot])
        self._node_list[node_slot].vms.discard(vm_name)
        self._n_committed_mhz[node_slot] -= self._v_demand[slot]
        self._n_committed_mb[node_slot] -= self._v_memory[slot]
        self._n_vm_count[node_slot] -= 1
        self._v_node[slot] = -1
        self._v_names[slot] = None
        self._free_slots.append(slot)
        self._vm_set_version += 1

    # -- the rebalance port ---------------------------------------------------

    def rebalance_view(self) -> ClusterStateView:
        """Frozen-dataclass snapshot (readable dialect, O(VMs) objects)."""
        nodes: Dict[str, NodeView] = {}
        vms: Dict[str, VmView] = {}
        for node_id, node in self.nodes.items():
            nodes[node_id] = NodeView(
                node_id=node_id,
                capacity_mhz=node.effective_mhz,
                fmax_mhz=node.fmax_mhz,
                memory_mb=node.memory_mb,
                committed_mhz=node.committed_mhz + node.planned_in_mhz,
                committed_memory_mb=node.committed_mb + node.planned_in_mb,
                demand_mhz=node.committed_mhz,
                violations=node.violation_steps,
                vm_names=tuple(sorted(node.vms)),
            )
        for vm in self.vms.values():
            vms[vm.name] = VmView(
                name=vm.name,
                node_id=vm.node_id,
                vcpus=vm.vcpus,
                vfreq_mhz=vm.vfreq_mhz,
                memory_mb=vm.memory_mb,
            )
        return ClusterStateView(
            t=self.t, nodes=nodes, vms=vms, in_flight=self._in_flight_views()
        )

    def rebalance_arrays(self) -> ClusterStateArrays:
        """SoA snapshot straight from the live arrays — no per-VM
        objects, which is the entire per-round cost the 1000-node scale
        point cannot afford.  Static VM columns (names, vcpus, vfreq,
        memory) are reused across rounds until churn changes the
        population; placement (``vm_node``) and node accounts are read
        fresh every call."""
        cache = self._arrays_cache
        if cache is None or cache[0] != self._vm_set_version:
            slots = np.flatnonzero(self._v_node >= 0)
            cache = (
                self._vm_set_version,
                slots,
                tuple(self._v_names[s] for s in slots.tolist()),
                self._v_vcpus[slots],
                self._v_vfreq[slots],
                self._v_memory[slots],
            )
            self._arrays_cache = cache
        _, slots, names, vcpus, vfreq, memory = cache
        return ClusterStateArrays(
            t=self.t,
            node_ids=self._node_ids,
            node_capacity_mhz=self._n_effective.copy(),
            node_fmax_mhz=self._n_fmax,
            node_memory_mb=self._n_memory,
            node_committed_mhz=self._n_committed_mhz + self._n_planned_in_mhz,
            node_committed_memory_mb=self._n_committed_mb
            + self._n_planned_in_mb,
            node_demand_mhz=self._n_committed_mhz.copy(),
            node_violations=self._n_violation_steps.copy(),
            vm_names=names,
            vm_node=self._v_node[slots],
            vm_vcpus=vcpus,
            vm_vfreq_mhz=vfreq,
            vm_memory_mb=memory,
            in_flight=self._in_flight_views(),
        )

    def _in_flight_views(self) -> Tuple[InFlightView, ...]:
        return tuple(
            InFlightView(
                vm_name=f.vm_name,
                source=f.source,
                target=f.target,
                arrives_at=f.arrives_at,
            )
            for f in self.in_flight
        )

    def start_migration(self, vm_name: str, target_id: str) -> MigrationStarted:
        vm = self.vms.get(vm_name)
        if vm is None:
            raise KeyError(f"unknown VM: {vm_name}")
        if any(f.vm_name == vm_name for f in self.in_flight):
            raise ValueError(f"{vm_name} is already migrating")
        target = self.nodes.get(target_id)
        if target is None:
            raise KeyError(f"unknown node: {target_id}")
        if target_id == vm.node_id:
            raise ValueError(f"{vm_name} already lives on {target_id}")
        free = (
            target.effective_mhz - target.committed_mhz - target.planned_in_mhz
        )
        if vm.demand_mhz > free + 1e-6:
            raise ValueError(
                f"{target_id} cannot host {vm_name}: Eq. 7 headroom "
                f"{free:.1f} MHz < {vm.demand_mhz:.1f} MHz"
            )
        if target.committed_mb + target.planned_in_mb + vm.memory_mb > target.memory_mb:
            raise ValueError(f"{target_id} cannot host {vm_name}: memory")
        duration = self.model.total_seconds(vm.memory_mb)
        # Reserve the target for the whole flight so churn admission and
        # later rounds both see the claim.
        self._n_planned_in_mhz[target.slot] += vm.demand_mhz
        self._n_planned_in_mb[target.slot] += vm.memory_mb
        self.in_flight.append(_Flight(
            vm_name=vm_name,
            source=vm.node_id,
            target=target_id,
            arrives_at=self.t + duration,
            downtime_s=self.model.downtime_s,
            demand_mhz=vm.demand_mhz,
            memory_mb=vm.memory_mb,
        ))
        self.result.migrations += 1
        return MigrationStarted(
            vm_name=vm_name,
            source=vm.node_id,
            target=target_id,
            duration_s=duration,
        )

    def _complete_migrations(self) -> None:
        still: List[_Flight] = []
        for flight in self.in_flight:
            if flight.arrives_at > self.t:
                still.append(flight)
                continue
            target = self.nodes[flight.target]
            vm = self.vms.get(flight.vm_name)
            self._n_planned_in_mhz[target.slot] -= flight.demand_mhz
            self._n_planned_in_mb[target.slot] -= flight.memory_mb
            if vm is None:
                continue  # departed mid-flight; reservation released
            source_slot = int(self._v_node[vm.slot])
            source = self._node_list[source_slot]
            source.vms.discard(vm.name)
            self._n_committed_mhz[source_slot] -= self._v_demand[vm.slot]
            self._n_committed_mb[source_slot] -= self._v_memory[vm.slot]
            self._n_vm_count[source_slot] -= 1
            target.vms.add(vm.name)
            self._n_committed_mhz[target.slot] += self._v_demand[vm.slot]
            self._n_committed_mb[target.slot] += self._v_memory[vm.slot]
            self._n_vm_count[target.slot] += 1
            self._v_node[vm.slot] = target.slot
            self.result.downtime_vm_seconds += flight.downtime_s
        self.in_flight = still

    # -- the run loop ---------------------------------------------------------

    def run(self, rebalance_loop=None, metrics=None) -> ChaosResult:
        """Step the scenario to its end; ``metrics`` is duck-typed
        (:class:`repro.sim.metrics.ClusterRebalanceMetrics` fits)."""
        cfg = self.config
        steps = int(round(cfg.duration_s / cfg.dt_s))
        arrivals = iter(self._arrivals)
        next_arrival = next(arrivals, None)
        chaos = sorted(self._chaos)
        chaos_idx = 0
        active_chaos: List[Tuple[float, int, float]] = []  # (end, node, factor)
        for step in range(1, steps + 1):
            self.t = step * cfg.dt_s
            self._complete_migrations()
            # Chaos events: start what begins this step, expire the rest.
            while chaos_idx < len(chaos) and chaos[chaos_idx][0] <= self.t:
                start, end, node_index, factor = chaos[chaos_idx]
                chaos_idx += 1
                active_chaos.append((end, node_index, factor))
                self.result.chaos_events += 1
            active_chaos = [c for c in active_chaos if c[0] > self.t]
            degraded: Dict[int, float] = {}
            for _, node_index, factor in active_chaos:
                degraded[node_index] = min(
                    degraded.get(node_index, 1.0), factor
                )
            self._n_effective[:] = self._n_capacity
            for node_index, factor in degraded.items():
                self._n_effective[node_index] = (
                    self._n_capacity[node_index] * factor
                )
            # Departures: pop the heap instead of scanning 50k VMs.
            heap = self._departures_heap
            while heap and heap[0][0] <= self.t:
                _, vm_name = heapq.heappop(heap)
                if vm_name in self.vms:
                    self._destroy(vm_name)
                    self.result.departures += 1
            # Arrivals.
            while next_arrival is not None and next_arrival[0] <= self.t:
                _, vcpus, vfreq, mem, departs = next_arrival
                self.result.arrivals += 1
                if self._admit((vcpus, vfreq, mem, departs)) is None:
                    self.result.rejected_arrivals += 1
                next_arrival = next(arrivals, None)
            # Guarantee-violation accounting (the headline metric).  The
            # deficit pass is vectorized; the few violating nodes keep
            # the scalar path's per-node accumulation order so pressure
            # sums round identically.
            deficit = self._n_committed_mhz - self._n_effective
            violating_slots = np.flatnonzero(
                (deficit > 1e-6) & (self._n_vm_count > 0)
            )
            pressure = 0.0
            violating = 0
            if violating_slots.size:
                self._n_violation_steps[violating_slots] += 1
                counts = self._n_vm_count[violating_slots].tolist()
                for d, count in zip(deficit[violating_slots].tolist(), counts):
                    pressure += d
                    violating += count
                    self.result.violation_vm_seconds += cfg.dt_s * count
            if metrics is not None:
                metrics.record_step(
                    self.t,
                    pressure_mhz=pressure,
                    violating_vms=violating,
                    in_flight=len(self.in_flight),
                )
            if rebalance_loop is not None:
                rebalance_loop.maybe_rebalance(self, step)
        self.result.final_vms = len(self.vms)
        if rebalance_loop is not None:
            self.result.rebalance_rounds = rebalance_loop.rounds_total
        return self.result
