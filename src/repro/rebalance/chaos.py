"""Coarse flow-level chaos+churn cluster for rebalancer benchmarks.

The full-fidelity :class:`~repro.sim.cluster_engine.ClusterSimulation`
runs every controller stage per vCPU per tick — perfect for tens of
nodes, hopeless for the headline 200-node / 10k-VM scenario.  This
module keeps only the accounting the rebalancer acts on: per-node
committed guarantee MHz vs. *effective* capacity (chaos events degrade
a node for a window, which is exactly what turns an Eq. 7-admissible
placement into guarantee pressure), Poisson VM churn, and pre-copy
migration blackouts.

Every random draw — arrival gaps, templates, lifetimes, chaos event
times/targets/severities — is pre-generated at construction from the
seed (repo convention, cf. :mod:`repro.checking.fuzz`), so a run is a
pure function of its :class:`ChaosConfig` and the rebalance
configuration: same seed, same result, byte for byte.

The violation metric is conservative and symmetric: a node whose
committed guarantees exceed its effective capacity cannot honour
*anyone's* vCFS floor, so every hosted VM accrues
``violation_vm_seconds`` for the step; the rebalancer's own migration
stop-and-copy pauses are charged to ``downtime_vm_seconds`` and
included in its headline total, so moving VMs is never free.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.placement.migration import MigrationModel
from repro.rebalance.view import ClusterStateView, InFlightView, NodeView, VmView

#: (vcpus, vfreq_mhz, memory_mb, weight) — the small-heavy template mix
#: used by the placement benchmarks (§IV-C scale).
DEFAULT_TEMPLATE_MIX = (
    (2, 500.0, 1024, 24),
    (4, 1200.0, 4096, 2),
    (4, 1800.0, 4096, 1),
)


@dataclass(frozen=True)
class ChaosConfig:
    """One fully-seeded chaos+churn scenario."""

    nodes: int = 200
    duration_s: float = 300.0
    dt_s: float = 1.0
    seed: int = 0
    initial_vms: int = 10_000
    #: Poisson arrival rate; by default sized to hold the population
    #: steady against ``mean_lifetime_s`` departures.
    arrival_rate_per_s: Optional[float] = None
    mean_lifetime_s: float = 1800.0
    #: Cluster-wide Poisson rate of chaos (degradation) events.
    degrade_rate_per_s: float = 0.02
    #: Effective capacity multiplier while an event is active.
    degrade_factor: float = 0.6
    degrade_duration_s: float = 60.0
    #: CHETEMI-like node: 40 logical CPUs x 2400 MHz, 256 GB.
    node_capacity_mhz: float = 96_000.0
    node_fmax_mhz: float = 2400.0
    node_memory_mb: int = 256 * 1024
    template_mix: Tuple[Tuple[int, float, int, int], ...] = DEFAULT_TEMPLATE_MIX

    @property
    def effective_arrival_rate(self) -> float:
        if self.arrival_rate_per_s is not None:
            return self.arrival_rate_per_s
        return self.initial_vms / self.mean_lifetime_s


@dataclass
class _ChaosNode:
    node_id: str
    capacity_mhz: float
    fmax_mhz: float
    memory_mb: int
    effective_mhz: float
    committed_mhz: float = 0.0
    committed_mb: int = 0
    vms: set = field(default_factory=set)
    #: Demand/memory reserved by migrations still in flight to us.
    planned_in_mhz: float = 0.0
    planned_in_mb: int = 0
    violation_steps: int = 0


@dataclass
class _ChaosVm:
    name: str
    vcpus: int
    vfreq_mhz: float
    memory_mb: int
    node_id: str
    departs_at: float

    @property
    def demand_mhz(self) -> float:
        return self.vcpus * self.vfreq_mhz


@dataclass
class _Flight:
    vm_name: str
    source: str
    target: str
    arrives_at: float
    downtime_s: float
    #: Sizes reserved on the target at start, released at completion
    #: even if the VM departs mid-flight.
    demand_mhz: float
    memory_mb: int


@dataclass(frozen=True)
class MigrationStarted:
    """What :meth:`ChurnChaosCluster.start_migration` hands the loop."""

    vm_name: str
    source: str
    target: str
    duration_s: float


@dataclass
class ChaosResult:
    """Headline accounting for one run."""

    config_seed: int
    nodes: int
    duration_s: float
    violation_vm_seconds: float = 0.0
    downtime_vm_seconds: float = 0.0
    migrations: int = 0
    rejected_arrivals: int = 0
    arrivals: int = 0
    departures: int = 0
    chaos_events: int = 0
    final_vms: int = 0
    rebalance_rounds: int = 0

    @property
    def total_bad_vm_seconds(self) -> float:
        """Violation time plus self-inflicted migration downtime."""
        return self.violation_vm_seconds + self.downtime_vm_seconds

    def to_dict(self) -> Dict[str, float]:
        return {
            "violation_vm_seconds": self.violation_vm_seconds,
            "downtime_vm_seconds": self.downtime_vm_seconds,
            "total_bad_vm_seconds": self.total_bad_vm_seconds,
            "migrations": self.migrations,
            "rejected_arrivals": self.rejected_arrivals,
            "arrivals": self.arrivals,
            "departures": self.departures,
            "chaos_events": self.chaos_events,
            "final_vms": self.final_vms,
            "rebalance_rounds": self.rebalance_rounds,
        }


class ChurnChaosCluster:
    """Flow-level 200-node cluster implementing the rebalance port."""

    def __init__(
        self,
        config: ChaosConfig,
        migration_model: Optional[MigrationModel] = None,
    ) -> None:
        self.config = config
        self.model = migration_model or MigrationModel()
        self.t = 0.0
        self.nodes: Dict[str, _ChaosNode] = {}
        width = len(str(max(config.nodes - 1, 1)))
        for i in range(config.nodes):
            node_id = f"node-{i:0{width}d}"
            self.nodes[node_id] = _ChaosNode(
                node_id=node_id,
                capacity_mhz=config.node_capacity_mhz,
                fmax_mhz=config.node_fmax_mhz,
                memory_mb=config.node_memory_mb,
                effective_mhz=config.node_capacity_mhz,
            )
        self.vms: Dict[str, _ChaosVm] = {}
        self.in_flight: List[_Flight] = []
        self.result = ChaosResult(
            config_seed=config.seed,
            nodes=config.nodes,
            duration_s=config.duration_s,
        )
        self._vm_seq = 0
        self._pregenerate(random.Random(config.seed))
        for template in self._initial_templates:
            if self._admit(template) is None:
                self.result.rejected_arrivals += 1

    # -- seeded pre-generation ------------------------------------------------

    def _pregenerate(self, rng: random.Random) -> None:
        cfg = self.config
        weights = [w for (_, _, _, w) in cfg.template_mix]
        #: (vcpus, vfreq, memory, lifetime) per initial VM.
        self._initial_templates = [
            self._draw_template(rng, weights, lifetime_from=0.0)
            for _ in range(cfg.initial_vms)
        ]
        #: Arrival stream: (t, vcpus, vfreq, memory, lifetime).
        self._arrivals: List[Tuple[float, int, float, int, float]] = []
        rate = cfg.effective_arrival_rate
        t = 0.0
        while rate > 0:
            t += rng.expovariate(rate)
            if t >= cfg.duration_s:
                break
            vcpus, vfreq, mem, life = self._draw_template(
                rng, weights, lifetime_from=t
            )
            self._arrivals.append((t, vcpus, vfreq, mem, life))
        #: Chaos stream: (start, end, node_index, factor).
        self._chaos: List[Tuple[float, float, int, float]] = []
        t = 0.0
        while cfg.degrade_rate_per_s > 0:
            t += rng.expovariate(cfg.degrade_rate_per_s)
            if t >= cfg.duration_s:
                break
            self._chaos.append((
                t,
                t + cfg.degrade_duration_s,
                rng.randrange(cfg.nodes),
                cfg.degrade_factor,
            ))

    def _draw_template(
        self, rng: random.Random, weights: List[int], *, lifetime_from: float
    ) -> Tuple[int, float, int, float]:
        vcpus, vfreq, mem, _ = rng.choices(
            self.config.template_mix, weights=weights
        )[0]
        lifetime = rng.expovariate(1.0 / self.config.mean_lifetime_s)
        return (vcpus, vfreq, mem, lifetime_from + lifetime)

    # -- placement / lifecycle ------------------------------------------------

    def _admit(self, template: Tuple[int, float, int, float]) -> Optional[str]:
        """Best-fit Eq. 7 admission against effective capacity."""
        vcpus, vfreq, mem, departs_at = template
        demand = vcpus * vfreq
        best: Optional[Tuple[float, str]] = None
        for node_id in self.nodes:
            node = self.nodes[node_id]
            free = (
                node.effective_mhz - node.committed_mhz - node.planned_in_mhz
            )
            if demand > free + 1e-6 or vfreq > node.fmax_mhz:
                continue
            if node.committed_mb + node.planned_in_mb + mem > node.memory_mb:
                continue
            key = (free - demand, node_id)
            if best is None or key < best:
                best = key
        if best is None:
            return None
        node = self.nodes[best[1]]
        name = f"vm-{self._vm_seq}"
        self._vm_seq += 1
        self.vms[name] = _ChaosVm(
            name=name,
            vcpus=vcpus,
            vfreq_mhz=vfreq,
            memory_mb=mem,
            node_id=node.node_id,
            departs_at=departs_at,
        )
        node.vms.add(name)
        node.committed_mhz += demand
        node.committed_mb += mem
        return name

    def _destroy(self, vm_name: str) -> None:
        vm = self.vms.pop(vm_name)
        node = self.nodes[vm.node_id]
        node.vms.discard(vm_name)
        node.committed_mhz -= vm.demand_mhz
        node.committed_mb -= vm.memory_mb

    # -- the rebalance port ---------------------------------------------------

    def rebalance_view(self) -> ClusterStateView:
        nodes: Dict[str, NodeView] = {}
        vms: Dict[str, VmView] = {}
        for node_id, node in self.nodes.items():
            nodes[node_id] = NodeView(
                node_id=node_id,
                capacity_mhz=node.effective_mhz,
                fmax_mhz=node.fmax_mhz,
                memory_mb=node.memory_mb,
                committed_mhz=node.committed_mhz + node.planned_in_mhz,
                committed_memory_mb=node.committed_mb + node.planned_in_mb,
                demand_mhz=node.committed_mhz,
                violations=node.violation_steps,
                vm_names=tuple(sorted(node.vms)),
            )
        for vm in self.vms.values():
            vms[vm.name] = VmView(
                name=vm.name,
                node_id=vm.node_id,
                vcpus=vm.vcpus,
                vfreq_mhz=vm.vfreq_mhz,
                memory_mb=vm.memory_mb,
            )
        in_flight = tuple(
            InFlightView(
                vm_name=f.vm_name,
                source=f.source,
                target=f.target,
                arrives_at=f.arrives_at,
            )
            for f in self.in_flight
        )
        return ClusterStateView(
            t=self.t, nodes=nodes, vms=vms, in_flight=in_flight
        )

    def start_migration(self, vm_name: str, target_id: str) -> MigrationStarted:
        vm = self.vms.get(vm_name)
        if vm is None:
            raise KeyError(f"unknown VM: {vm_name}")
        if any(f.vm_name == vm_name for f in self.in_flight):
            raise ValueError(f"{vm_name} is already migrating")
        target = self.nodes.get(target_id)
        if target is None:
            raise KeyError(f"unknown node: {target_id}")
        if target_id == vm.node_id:
            raise ValueError(f"{vm_name} already lives on {target_id}")
        free = (
            target.effective_mhz - target.committed_mhz - target.planned_in_mhz
        )
        if vm.demand_mhz > free + 1e-6:
            raise ValueError(
                f"{target_id} cannot host {vm_name}: Eq. 7 headroom "
                f"{free:.1f} MHz < {vm.demand_mhz:.1f} MHz"
            )
        if target.committed_mb + target.planned_in_mb + vm.memory_mb > target.memory_mb:
            raise ValueError(f"{target_id} cannot host {vm_name}: memory")
        duration = self.model.total_seconds(vm.memory_mb)
        # Reserve the target for the whole flight so churn admission and
        # later rounds both see the claim.
        target.planned_in_mhz += vm.demand_mhz
        target.planned_in_mb += vm.memory_mb
        self.in_flight.append(_Flight(
            vm_name=vm_name,
            source=vm.node_id,
            target=target_id,
            arrives_at=self.t + duration,
            downtime_s=self.model.downtime_s,
            demand_mhz=vm.demand_mhz,
            memory_mb=vm.memory_mb,
        ))
        self.result.migrations += 1
        return MigrationStarted(
            vm_name=vm_name,
            source=vm.node_id,
            target=target_id,
            duration_s=duration,
        )

    def _complete_migrations(self) -> None:
        still: List[_Flight] = []
        for flight in self.in_flight:
            if flight.arrives_at > self.t:
                still.append(flight)
                continue
            target = self.nodes[flight.target]
            vm = self.vms.get(flight.vm_name)
            target.planned_in_mhz -= flight.demand_mhz
            target.planned_in_mb -= flight.memory_mb
            if vm is None:
                continue  # departed mid-flight; reservation released
            source = self.nodes[vm.node_id]
            source.vms.discard(vm.name)
            source.committed_mhz -= vm.demand_mhz
            source.committed_mb -= vm.memory_mb
            target.vms.add(vm.name)
            target.committed_mhz += vm.demand_mhz
            target.committed_mb += vm.memory_mb
            vm.node_id = flight.target
            self.result.downtime_vm_seconds += flight.downtime_s
        self.in_flight = still

    # -- the run loop ---------------------------------------------------------

    def run(self, rebalance_loop=None, metrics=None) -> ChaosResult:
        """Step the scenario to its end; ``metrics`` is duck-typed
        (:class:`repro.sim.metrics.ClusterRebalanceMetrics` fits)."""
        cfg = self.config
        steps = int(round(cfg.duration_s / cfg.dt_s))
        arrivals = iter(self._arrivals)
        next_arrival = next(arrivals, None)
        chaos = sorted(self._chaos)
        chaos_idx = 0
        active_chaos: List[Tuple[float, int, float]] = []  # (end, node, factor)
        for step in range(1, steps + 1):
            self.t = step * cfg.dt_s
            self._complete_migrations()
            # Chaos events: start what begins this step, expire the rest.
            while chaos_idx < len(chaos) and chaos[chaos_idx][0] <= self.t:
                start, end, node_index, factor = chaos[chaos_idx]
                chaos_idx += 1
                active_chaos.append((end, node_index, factor))
                self.result.chaos_events += 1
            active_chaos = [c for c in active_chaos if c[0] > self.t]
            degraded: Dict[int, float] = {}
            for _, node_index, factor in active_chaos:
                degraded[node_index] = min(
                    degraded.get(node_index, 1.0), factor
                )
            for i, node in enumerate(self.nodes.values()):
                node.effective_mhz = node.capacity_mhz * degraded.get(i, 1.0)
            # Departures.
            for vm_name in [
                v.name for v in self.vms.values() if v.departs_at <= self.t
            ]:
                self._destroy(vm_name)
                self.result.departures += 1
            # Arrivals.
            while next_arrival is not None and next_arrival[0] <= self.t:
                _, vcpus, vfreq, mem, departs = next_arrival
                self.result.arrivals += 1
                if self._admit((vcpus, vfreq, mem, departs)) is None:
                    self.result.rejected_arrivals += 1
                next_arrival = next(arrivals, None)
            # Guarantee-violation accounting (the headline metric).
            pressure = 0.0
            violating = 0
            for node in self.nodes.values():
                deficit = node.committed_mhz - node.effective_mhz
                if deficit > 1e-6 and node.vms:
                    node.violation_steps += 1
                    violating += len(node.vms)
                    pressure += deficit
                    self.result.violation_vm_seconds += cfg.dt_s * len(node.vms)
            if metrics is not None:
                metrics.record_step(
                    self.t,
                    pressure_mhz=pressure,
                    violating_vms=violating,
                    in_flight=len(self.in_flight),
                )
            if rebalance_loop is not None:
                rebalance_loop.maybe_rebalance(self, step)
        self.result.final_vms = len(self.vms)
        if rebalance_loop is not None:
            self.result.rebalance_rounds = rebalance_loop.rounds_total
        return self.result
