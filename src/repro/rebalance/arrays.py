"""Structure-of-arrays dialect of the rebalancer's cluster state.

:class:`~repro.rebalance.view.ClusterStateView` is the readable,
frozen-dataclass spelling of one planner round's input.  At fleet
scale it is also the planner's main cost: PR 7's 200-node / 10k-VM
rounds spent ~34 ms materialising 10k ``VmView`` objects per round,
and a 1000-node / 50k-VM cluster quintuples that before the planner
does any work.  This module is the array spelling of the same
snapshot — parallel NumPy arrays over stable node/VM slots — plus
:class:`SimulatedArrays`, the what-if planning state that mutates
those arrays instead of dataclass copies.

Contract: the two dialects are interchangeable.  A
:class:`ClusterStateArrays` answers every signal query
(``total_pressure_mhz`` / ``pressured_nodes`` / ``fragmentation_score``
/ ``pinned_nodes`` / ``migrating_vms``) with bit-identical results to
the equivalent view, exposes lazy ``.nodes`` / ``.vms`` mappings that
build frozen :class:`~repro.rebalance.view.NodeView` /
:class:`~repro.rebalance.view.VmView` objects on demand (so the
independent plan oracle :func:`repro.checking.invariants.
check_plan_admissible` runs unchanged on either dialect), and the
:class:`~repro.rebalance.planner.MigrationPlanner` produces
bit-identical plans from either spelling under the same seed — fuzzed
cross-dialect in ``tests/rebalance/test_arrays.py``.

Node slots are always in sorted ``node_id`` order: every tie-break the
scalar planner resolves by lexicographic node id, the vectorized path
resolves by slot index, and the two must agree.  VM slots carry no
ordering contract (churned clusters reuse slots); all VM tie-breaks go
through names.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.rebalance.view import (
    ClusterStateView,
    InFlightView,
    NodeView,
    VmView,
)

#: Same float slack as :mod:`repro.rebalance.simstate` (Eq. 7 checks).
EPS_MHZ = 1e-6


def _seq_sum(values: Iterable[float]) -> float:
    """Order-preserving sequential sum.

    ``np.sum`` is pairwise; the scalar dialect accumulates left to
    right.  Signals that feed bit-identity comparisons must round the
    same way, so they sum Python-side in slot order.
    """
    total = 0.0
    for v in values:
        total += v
    return total


class _LazyNodeMap(Mapping):
    """``view.nodes``-compatible mapping building NodeView on demand."""

    def __init__(self, arrays: "ClusterStateArrays") -> None:
        self._a = arrays

    def __getitem__(self, node_id: str) -> NodeView:
        slot = self._a.node_index[node_id]
        return self._a.node_view(slot)

    def __iter__(self):
        return iter(self._a.node_ids)

    def __len__(self) -> int:
        return len(self._a.node_ids)

    def __contains__(self, node_id) -> bool:
        return node_id in self._a.node_index


class _LazyVmMap(Mapping):
    """``view.vms``-compatible mapping building VmView on demand."""

    def __init__(self, arrays: "ClusterStateArrays") -> None:
        self._a = arrays

    def __getitem__(self, vm_name: str) -> VmView:
        slot = self._a.vm_index[vm_name]
        return self._a.vm_view(slot)

    def __iter__(self):
        return iter(self._a.vm_names)

    def __len__(self) -> int:
        return len(self._a.vm_names)

    def __contains__(self, vm_name) -> bool:
        return vm_name in self._a.vm_index


class ClusterStateArrays:
    """Frozen SoA cluster snapshot — the fleet-scale planner input.

    All node arrays are indexed by node slot (sorted ``node_id``
    order), all VM arrays by VM slot.  The snapshot is read-only by
    convention: the planner mutates a :class:`SimulatedArrays` copy,
    never this object.
    """

    __slots__ = (
        "t",
        "node_ids",
        "node_index",
        "node_capacity_mhz",
        "node_fmax_mhz",
        "node_memory_mb",
        "node_committed_mhz",
        "node_committed_memory_mb",
        "node_demand_mhz",
        "node_violations",
        "node_powered_on",
        "vm_names",
        "vm_index",
        "vm_node",
        "vm_vcpus",
        "vm_vfreq_mhz",
        "vm_memory_mb",
        "vm_demand_mhz",
        "in_flight",
        "invariant_totals",
        "_nodes_map",
        "_vms_map",
        "_names_cache",
    )

    def __init__(
        self,
        *,
        t: float,
        node_ids: Sequence[str],
        node_capacity_mhz: np.ndarray,
        node_fmax_mhz: np.ndarray,
        node_memory_mb: np.ndarray,
        node_committed_mhz: np.ndarray,
        node_committed_memory_mb: np.ndarray,
        node_demand_mhz: Optional[np.ndarray] = None,
        node_violations: Optional[np.ndarray] = None,
        node_powered_on: Optional[np.ndarray] = None,
        vm_names: Sequence[str] = (),
        vm_node: Optional[np.ndarray] = None,
        vm_vcpus: Optional[np.ndarray] = None,
        vm_vfreq_mhz: Optional[np.ndarray] = None,
        vm_memory_mb: Optional[np.ndarray] = None,
        in_flight: Tuple[InFlightView, ...] = (),
        invariant_totals: Tuple[int, int] = (0, 0),
    ) -> None:
        ids = tuple(node_ids)
        if list(ids) != sorted(ids):
            raise ValueError("node slots must be in sorted node_id order")
        n = len(ids)
        self.t = t
        self.node_ids = ids
        self.node_index = {node_id: i for i, node_id in enumerate(ids)}
        self.node_capacity_mhz = np.asarray(node_capacity_mhz, dtype=np.float64)
        self.node_fmax_mhz = np.asarray(node_fmax_mhz, dtype=np.float64)
        self.node_memory_mb = np.asarray(node_memory_mb, dtype=np.int64)
        self.node_committed_mhz = np.asarray(
            node_committed_mhz, dtype=np.float64
        )
        self.node_committed_memory_mb = np.asarray(
            node_committed_memory_mb, dtype=np.int64
        )
        self.node_demand_mhz = (
            np.zeros(n)
            if node_demand_mhz is None
            else np.asarray(node_demand_mhz, dtype=np.float64)
        )
        self.node_violations = (
            np.zeros(n, dtype=np.int64)
            if node_violations is None
            else np.asarray(node_violations, dtype=np.int64)
        )
        self.node_powered_on = (
            np.ones(n, dtype=bool)
            if node_powered_on is None
            else np.asarray(node_powered_on, dtype=bool)
        )
        v = len(vm_names)
        self.vm_names = tuple(vm_names)
        self.vm_index = {name: i for i, name in enumerate(self.vm_names)}
        self.vm_node = (
            np.zeros(v, dtype=np.int64)
            if vm_node is None
            else np.asarray(vm_node, dtype=np.int64)
        )
        self.vm_vcpus = (
            np.zeros(v, dtype=np.int64)
            if vm_vcpus is None
            else np.asarray(vm_vcpus, dtype=np.int64)
        )
        self.vm_vfreq_mhz = (
            np.zeros(v)
            if vm_vfreq_mhz is None
            else np.asarray(vm_vfreq_mhz, dtype=np.float64)
        )
        self.vm_memory_mb = (
            np.zeros(v, dtype=np.int64)
            if vm_memory_mb is None
            else np.asarray(vm_memory_mb, dtype=np.int64)
        )
        # Same product as VmView.demand_mhz computes per VM.
        self.vm_demand_mhz = self.vm_vcpus * self.vm_vfreq_mhz
        self.in_flight = tuple(in_flight)
        self.invariant_totals = invariant_totals
        self._nodes_map = _LazyNodeMap(self)
        self._vms_map = _LazyVmMap(self)
        self._names_cache: Optional[List[Tuple[str, ...]]] = None

    # -- view-compatible surface ----------------------------------------------

    @property
    def nodes(self) -> Mapping:
        """Lazy ``{node_id: NodeView}`` mapping (oracle compatibility)."""
        return self._nodes_map

    @property
    def vms(self) -> Mapping:
        """Lazy ``{vm_name: VmView}`` mapping (oracle compatibility)."""
        return self._vms_map

    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def num_vms(self) -> int:
        return len(self.vm_names)

    def _names_by_slot(self) -> List[Tuple[str, ...]]:
        """Per-slot sorted VM-name tuples, built once per snapshot.

        A lone ``node_view`` call could grep ``vm_node`` directly, but
        the plan oracle iterates ``nodes.values()`` — one grouping pass
        here keeps that O(VMs + nodes) instead of O(nodes x VMs).
        """
        if self._names_cache is None:
            grouped: List[List[str]] = [[] for _ in self.node_ids]
            for i, slot in enumerate(self.vm_node.tolist()):
                grouped[slot].append(self.vm_names[i])
            self._names_cache = [tuple(sorted(g)) for g in grouped]
        return self._names_cache

    def node_view(self, slot: int) -> NodeView:
        """One node's frozen view, materialised on demand."""
        return NodeView(
            node_id=self.node_ids[slot],
            capacity_mhz=float(self.node_capacity_mhz[slot]),
            fmax_mhz=float(self.node_fmax_mhz[slot]),
            memory_mb=int(self.node_memory_mb[slot]),
            committed_mhz=float(self.node_committed_mhz[slot]),
            committed_memory_mb=int(self.node_committed_memory_mb[slot]),
            demand_mhz=float(self.node_demand_mhz[slot]),
            violations=int(self.node_violations[slot]),
            powered_on=bool(self.node_powered_on[slot]),
            vm_names=self._names_by_slot()[slot],
        )

    def vm_view(self, slot: int) -> VmView:
        return VmView(
            name=self.vm_names[slot],
            node_id=self.node_ids[int(self.vm_node[slot])],
            vcpus=int(self.vm_vcpus[slot]),
            vfreq_mhz=float(self.vm_vfreq_mhz[slot]),
            memory_mb=int(self.vm_memory_mb[slot]),
        )

    # -- derived signals (bit-identical to ClusterStateView) ------------------

    def pressure_by_slot(self) -> np.ndarray:
        """Eq. 7 deficit per node slot (0 where capacity covers)."""
        return np.maximum(0.0, self.node_committed_mhz - self.node_capacity_mhz)

    def pressured_nodes(self) -> List[NodeView]:
        """Nodes with an Eq. 7 deficit, worst first (ties by id)."""
        pressure = self.pressure_by_slot()
        slots = np.flatnonzero(pressure > 0)
        # Stable sort on -pressure keeps ascending slot (= id) on ties.
        order = slots[np.argsort(-pressure[slots], kind="stable")]
        return [self.node_view(int(s)) for s in order]

    def total_pressure_mhz(self) -> float:
        return _seq_sum(self.pressure_by_slot().tolist())

    def pinned_nodes(self) -> frozenset:
        pinned = set()
        for mig in self.in_flight:
            pinned.add(mig.source)
            pinned.add(mig.target)
        return frozenset(pinned)

    def migrating_vms(self) -> frozenset:
        return frozenset(m.vm_name for m in self.in_flight)

    def fragmentation_score(self) -> float:
        """Stranded-headroom fraction in [0, 1] — same quantum rule as
        :meth:`ClusterStateView.fragmentation_score`."""
        if not self.vm_names:
            return 0.0
        quantum = float(self.vm_demand_mhz.min())
        total = stranded = 0.0
        headroom = np.maximum(
            0.0, self.node_capacity_mhz - self.node_committed_mhz
        )
        for slot, h in enumerate(headroom.tolist()):
            if not self.node_powered_on[slot]:
                continue
            total += h
            if h < quantum:
                stranded += h
        return stranded / total if total > 0 else 0.0

    # -- dialect conversions --------------------------------------------------

    def to_view(self) -> ClusterStateView:
        """Materialise the frozen-dataclass dialect (test/explain path —
        O(VMs), exactly the cost this class exists to avoid per round)."""
        nodes = {
            node_id: self.node_view(slot)
            for slot, node_id in enumerate(self.node_ids)
        }
        vms = {
            name: self.vm_view(slot) for slot, name in enumerate(self.vm_names)
        }
        return ClusterStateView(
            t=self.t,
            nodes=nodes,
            vms=vms,
            in_flight=self.in_flight,
            invariant_totals=self.invariant_totals,
        )

    @classmethod
    def from_view(cls, view: ClusterStateView) -> "ClusterStateArrays":
        """Array spelling of an existing view (sorted node slots)."""
        node_ids = sorted(view.nodes)
        index = {node_id: i for i, node_id in enumerate(node_ids)}
        n = len(node_ids)
        capacity = np.empty(n)
        fmax = np.empty(n)
        memory = np.empty(n, dtype=np.int64)
        committed = np.empty(n)
        committed_mb = np.empty(n, dtype=np.int64)
        demand = np.empty(n)
        violations = np.empty(n, dtype=np.int64)
        powered = np.empty(n, dtype=bool)
        for i, node_id in enumerate(node_ids):
            node = view.nodes[node_id]
            capacity[i] = node.capacity_mhz
            fmax[i] = node.fmax_mhz
            memory[i] = node.memory_mb
            committed[i] = node.committed_mhz
            committed_mb[i] = node.committed_memory_mb
            demand[i] = node.demand_mhz
            violations[i] = node.violations
            powered[i] = node.powered_on
        vm_names = list(view.vms)
        v = len(vm_names)
        vm_node = np.empty(v, dtype=np.int64)
        vcpus = np.empty(v, dtype=np.int64)
        vfreq = np.empty(v)
        vm_mem = np.empty(v, dtype=np.int64)
        for i, name in enumerate(vm_names):
            vm = view.vms[name]
            vm_node[i] = index[vm.node_id]
            vcpus[i] = vm.vcpus
            vfreq[i] = vm.vfreq_mhz
            vm_mem[i] = vm.memory_mb
        return cls(
            t=view.t,
            node_ids=node_ids,
            node_capacity_mhz=capacity,
            node_fmax_mhz=fmax,
            node_memory_mb=memory,
            node_committed_mhz=committed,
            node_committed_memory_mb=committed_mb,
            node_demand_mhz=demand,
            node_violations=violations,
            node_powered_on=powered,
            vm_names=vm_names,
            vm_node=vm_node,
            vm_vcpus=vcpus,
            vm_vfreq_mhz=vfreq,
            vm_memory_mb=vm_mem,
            in_flight=view.in_flight,
            invariant_totals=view.invariant_totals,
        )

    @classmethod
    def from_cluster_sim(cls, sim) -> "ClusterStateArrays":
        """Snapshot a live :class:`~repro.sim.cluster_engine.
        ClusterSimulation` straight into arrays (duck-typed like
        :meth:`ClusterStateView.from_cluster_sim`, no intermediate
        dataclass pass)."""
        manager = getattr(sim, "node_manager", None)
        violations_by_node: Dict[str, int] = {}
        totals = (0, 0)
        if manager is not None:
            by_node = getattr(manager, "invariant_violations_by_node", None)
            if by_node is not None:
                violations_by_node = by_node()
            totals = manager.invariant_totals()
        node_ids = sorted(sim.runtimes)
        index = {node_id: i for i, node_id in enumerate(node_ids)}
        n = len(node_ids)
        capacity = np.empty(n)
        fmax = np.empty(n)
        memory = np.empty(n, dtype=np.int64)
        committed = np.empty(n)
        committed_mb = np.empty(n, dtype=np.int64)
        demand = np.empty(n)
        violations = np.empty(n, dtype=np.int64)
        powered = np.empty(n, dtype=bool)
        vm_names: List[str] = []
        vm_node: List[int] = []
        vcpus: List[int] = []
        vfreq: List[float] = []
        vm_mem: List[int] = []
        for i, node_id in enumerate(node_ids):
            runtime = sim.runtimes[node_id]
            spec = runtime.node.spec
            hypervisor = runtime.hypervisor
            node_demand = 0.0
            for vm in hypervisor.vms:
                node_demand += (
                    sum(min(v.demand, 1.0) for v in vm.vcpus) * spec.fmax_mhz
                )
                vm_names.append(vm.name)
                vm_node.append(i)
                vcpus.append(vm.template.vcpus)
                vfreq.append(vm.template.vfreq_mhz)
                vm_mem.append(vm.template.memory_mb)
            capacity[i] = spec.capacity_mhz
            fmax[i] = spec.fmax_mhz
            memory[i] = spec.memory_mb
            committed[i] = hypervisor.committed_mhz()
            committed_mb[i] = hypervisor.committed_memory_mb()
            demand[i] = node_demand
            violations[i] = violations_by_node.get(node_id, 0)
            powered[i] = runtime.powered_on
        in_flight = tuple(
            InFlightView(
                vm_name=m.vm_name,
                source=m.source,
                target=m.target,
                arrives_at=m.arrives_at,
            )
            for m in getattr(sim, "_in_flight", ())
        )
        return cls(
            t=sim.t,
            node_ids=node_ids,
            node_capacity_mhz=capacity,
            node_fmax_mhz=fmax,
            node_memory_mb=memory,
            node_committed_mhz=committed,
            node_committed_memory_mb=committed_mb,
            node_demand_mhz=demand,
            node_violations=violations,
            node_powered_on=powered,
            vm_names=vm_names,
            vm_node=np.asarray(vm_node, dtype=np.int64),
            vm_vcpus=np.asarray(vcpus, dtype=np.int64),
            vm_vfreq_mhz=np.asarray(vfreq, dtype=np.float64),
            vm_memory_mb=np.asarray(vm_mem, dtype=np.int64),
            in_flight=in_flight,
            invariant_totals=totals,
        )


class _SimNodeHandle:
    """Live per-node proxy over :class:`SimulatedArrays` arrays.

    Mirrors the attribute surface of :class:`~repro.rebalance.simstate.
    SimulatedNode` that the planner's goal passes read, but every
    property reads the *current* array cell — moves applied after the
    handle was created are visible through it, exactly like the
    mutable dataclass.
    """

    __slots__ = ("_s", "slot", "node_id")

    def __init__(self, state: "SimulatedArrays", slot: int) -> None:
        self._s = state
        self.slot = slot
        self.node_id = state.node_ids[slot]

    @property
    def capacity_mhz(self) -> float:
        return float(self._s.capacity_mhz[self.slot])

    @property
    def committed_mhz(self) -> float:
        return float(self._s.committed_mhz[self.slot])

    @property
    def committed_memory_mb(self) -> int:
        return int(self._s.committed_memory_mb[self.slot])

    @property
    def powered_on(self) -> bool:
        return bool(self._s.powered_on[self.slot])

    @property
    def pressure_mhz(self) -> float:
        return max(0.0, self.committed_mhz - self.capacity_mhz)

    @property
    def headroom_mhz(self) -> float:
        return self.capacity_mhz - self.committed_mhz

    @property
    def utilisation(self) -> float:
        cap = self.capacity_mhz
        if cap <= 0:
            return float("inf") if self.committed_mhz > 0 else 0.0
        return self.committed_mhz / cap

    @property
    def vm_names(self) -> Tuple[str, ...]:
        s = self._s
        return tuple(
            s.vm_names[i] for i in np.flatnonzero(s.vm_node == self.slot)
        )

    @property
    def num_vms(self) -> int:
        return int(self._s.vm_count[self.slot])


class _SimNodeMap(Mapping):
    """``state.nodes``-compatible mapping of live node handles."""

    def __init__(self, state: "SimulatedArrays") -> None:
        self._s = state

    def __getitem__(self, node_id: str) -> _SimNodeHandle:
        return _SimNodeHandle(self._s, self._s.node_index[node_id])

    def __iter__(self):
        return iter(self._s.node_ids)

    def __len__(self) -> int:
        return len(self._s.node_ids)

    def __contains__(self, node_id) -> bool:
        return node_id in self._s.node_index

    def values(self):
        return [
            _SimNodeHandle(self._s, slot)
            for slot in range(len(self._s.node_ids))
        ]


class SimulatedArrays:
    """What-if planning state over arrays — the fleet-scale spelling of
    :class:`~repro.rebalance.simstate.SimulatedState`.

    Same query/mutation contract (``host_of`` / ``movable_vms_on`` /
    ``can_accept`` / ``fit_after_mhz`` / ``apply_move`` / ``clone``),
    same Eq. 7 × ``allocation_ratio`` admissibility arithmetic, but a
    clone is a handful of ``ndarray.copy()`` calls instead of
    re-materialising every VM, and the planner's best-fit target scan
    runs as one masked NumPy reduction instead of a Python loop over
    every node.
    """

    def __init__(
        self,
        arrays: ClusterStateArrays,
        *,
        allocation_ratio: float = 1.0,
        pinned: Iterable[str] = (),
    ) -> None:
        if allocation_ratio <= 0:
            raise ValueError("allocation_ratio must be positive")
        self.allocation_ratio = allocation_ratio
        self.pinned: Set[str] = set(pinned) | set(arrays.pinned_nodes())
        self.immovable: Set[str] = set(arrays.migrating_vms())
        self.node_ids = arrays.node_ids
        self.node_index = arrays.node_index
        # Same per-node product the scalar dialect computes.
        self.capacity_mhz = arrays.node_capacity_mhz * allocation_ratio
        self.fmax_mhz = arrays.node_fmax_mhz
        self.memory_mb = arrays.node_memory_mb
        self.committed_mhz = arrays.node_committed_mhz.copy()
        self.committed_memory_mb = arrays.node_committed_memory_mb.copy()
        self.powered_on = arrays.node_powered_on
        self.vm_names = arrays.vm_names
        self.vm_index = arrays.vm_index
        self.vm_node = arrays.vm_node.copy()
        self.vm_vcpus = arrays.vm_vcpus
        self.vm_vfreq_mhz = arrays.vm_vfreq_mhz
        self.vm_memory_mb = arrays.vm_memory_mb
        self.vm_demand_mhz = arrays.vm_demand_mhz
        self.vm_count = np.bincount(
            self.vm_node, minlength=len(self.node_ids)
        ).astype(np.int64)
        self.pinned_mask = np.zeros(len(self.node_ids), dtype=bool)
        for node_id in self.pinned:
            slot = self.node_index.get(node_id)
            if slot is not None:
                self.pinned_mask[slot] = True
        self.nodes = _SimNodeMap(self)

    def clone(self) -> "SimulatedArrays":
        """Independent copy for trial placements — array copies only."""
        out = object.__new__(SimulatedArrays)
        out.allocation_ratio = self.allocation_ratio
        out.pinned = set(self.pinned)
        out.immovable = set(self.immovable)
        out.node_ids = self.node_ids
        out.node_index = self.node_index
        out.capacity_mhz = self.capacity_mhz
        out.fmax_mhz = self.fmax_mhz
        out.memory_mb = self.memory_mb
        out.committed_mhz = self.committed_mhz.copy()
        out.committed_memory_mb = self.committed_memory_mb.copy()
        out.powered_on = self.powered_on
        out.vm_names = self.vm_names
        out.vm_index = self.vm_index
        out.vm_node = self.vm_node.copy()
        out.vm_vcpus = self.vm_vcpus
        out.vm_vfreq_mhz = self.vm_vfreq_mhz
        out.vm_memory_mb = self.vm_memory_mb
        out.vm_demand_mhz = self.vm_demand_mhz
        out.vm_count = self.vm_count.copy()
        out.pinned_mask = self.pinned_mask
        out.nodes = _SimNodeMap(out)
        return out

    # -- queries (contract of SimulatedState) ---------------------------------

    def host_of(self, vm_name: str) -> str:
        return self.node_ids[int(self.vm_node[self.vm_index[vm_name]])]

    def movable_vms_on(self, node_id: str) -> List[VmView]:
        """Hosted VMs eligible to leave, largest demand first (ties by
        name) — identical order to the scalar dialect."""
        slot = self.node_index[node_id]
        out = []
        for i in np.flatnonzero(self.vm_node == slot):
            name = self.vm_names[i]
            if name in self.immovable:
                continue
            out.append(
                VmView(
                    name=name,
                    node_id=node_id,
                    vcpus=int(self.vm_vcpus[i]),
                    vfreq_mhz=float(self.vm_vfreq_mhz[i]),
                    memory_mb=int(self.vm_memory_mb[i]),
                )
            )
        out.sort(key=lambda v: (-v.demand_mhz, v.name))
        return out

    def can_accept(self, vm_name: str, node_id: str) -> bool:
        """Would Eq. 7 (x allocation_ratio) and memory still hold?"""
        vslot = self.vm_index.get(vm_name)
        nslot = self.node_index.get(node_id)
        if vslot is None or nslot is None:
            return False
        if not self.powered_on[nslot] or node_id in self.pinned:
            return False
        if nslot == self.vm_node[vslot]:
            return False
        if self.vm_vfreq_mhz[vslot] > self.fmax_mhz[nslot]:
            return False  # guarantee above F_MAX is unsatisfiable (Eq. 2)
        demand = float(self.vm_demand_mhz[vslot])
        freq_ok = (
            float(self.committed_mhz[nslot]) + demand
            <= float(self.capacity_mhz[nslot]) + EPS_MHZ
        )
        mem_ok = (
            int(self.committed_memory_mb[nslot]) + int(self.vm_memory_mb[vslot])
            <= int(self.memory_mb[nslot])
        )
        return freq_ok and mem_ok

    def fit_after_mhz(self, vm_name: str, node_id: str) -> float:
        nslot = self.node_index[node_id]
        headroom = float(self.capacity_mhz[nslot]) - float(
            self.committed_mhz[nslot]
        )
        return headroom - float(self.vm_demand_mhz[self.vm_index[vm_name]])

    # -- the vectorized best-fit target scan ----------------------------------

    def admissible_fit(
        self,
        vm_name: str,
        *,
        exclude: Iterable[str] = (),
        used_only: bool = False,
        node_moves: Optional[np.ndarray] = None,
        max_moves_per_node: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(candidate slots, best-fit keys) for one VM, one NumPy pass.

        The mask reproduces every scalar ``_pick_target`` filter:
        powered on, not pinned, per-node move budget, used-only, no
        existing Eq. 7 deficit, Eq. 2 ``F_MAX``, Eq. 7 × allocation
        ratio with the same ``EPS_MHZ`` slack, memory, and never the
        current host.  The fit key is ``headroom - demand``, the same
        subtraction order as :meth:`fit_after_mhz`.
        """
        vslot = self.vm_index[vm_name]
        demand = float(self.vm_demand_mhz[vslot])
        mask = self.powered_on & ~self.pinned_mask
        if node_moves is not None and max_moves_per_node is not None:
            mask &= node_moves < max_moves_per_node
        if used_only:
            mask &= self.vm_count > 0
        # pressure_mhz > 0 <=> committed > capacity
        mask &= self.committed_mhz <= self.capacity_mhz
        mask &= self.vm_vfreq_mhz[vslot] <= self.fmax_mhz
        mask &= self.committed_mhz + demand <= self.capacity_mhz + EPS_MHZ
        mask &= (
            self.committed_memory_mb + int(self.vm_memory_mb[vslot])
            <= self.memory_mb
        )
        mask[int(self.vm_node[vslot])] = False
        for node_id in exclude:
            slot = self.node_index.get(node_id)
            if slot is not None:
                mask[slot] = False
        candidates = np.flatnonzero(mask)
        if candidates.size == 0:
            return candidates, np.empty(0)
        fit = (
            self.capacity_mhz[candidates] - self.committed_mhz[candidates]
        ) - demand
        return candidates, fit

    # -- mutation -------------------------------------------------------------

    def apply_move(self, vm_name: str, target_id: str) -> None:
        """Commit one tentative move inside the what-if arrays."""
        if vm_name in self.immovable:
            raise ValueError(f"{vm_name} is pinned by an in-flight migration")
        if not self.can_accept(vm_name, target_id):
            raise ValueError(
                f"{vm_name} does not fit on {target_id} "
                "(Eq. 7, memory, power or pinning)"
            )
        vslot = self.vm_index[vm_name]
        source = int(self.vm_node[vslot])
        target = self.node_index[target_id]
        demand = float(self.vm_demand_mhz[vslot])
        memory = int(self.vm_memory_mb[vslot])
        self.committed_mhz[source] -= demand
        self.committed_memory_mb[source] -= memory
        self.vm_count[source] -= 1
        self.committed_mhz[target] += demand
        self.committed_memory_mb[target] += memory
        self.vm_count[target] += 1
        self.vm_node[vslot] = target
