"""Frequency-guarantee-aware migration planning.

Each round the planner turns one frozen
:class:`~repro.rebalance.view.ClusterStateView` into a bounded
:class:`MigrationPlan` serving three goals, in priority order:

1. **pressure** — relieve Eq. 7 deficits: a node whose committed
   guarantees exceed its (possibly degraded) capacity sheds VMs until
   the deficit is gone, smallest-covering VM first (the
   :class:`~repro.placement.migration.ThresholdMigrationPolicy` victim
   rule, restated in MHz);
2. **drain** — evacuate nodes flagged for maintenance completely,
   largest VM first;
3. **consolidate** — defragment: a node under the consolidation
   watermark is evacuated *only if the whole node empties* onto used
   Eq. 7-admissible targets, so the move spend actually frees a node.

Targets are always chosen best-fit (least headroom left after the
move, seeded tie-break) against the what-if
:class:`~repro.rebalance.simstate.SimulatedState`, so a plan can never
over-commit a node even when several moves share a target.  Every move
is costed with the existing pre-copy
:class:`~repro.placement.migration.MigrationModel` and scored as
relieved/freed guarantee MHz per second of migration cost.

Plans are deterministic: all candidate iteration is sorted, and the
only randomness is a seeded tie-break rank — same view + same seed
gives the identical plan, bit for bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.placement.migration import MigrationModel
from repro.rebalance.arrays import ClusterStateArrays, SimulatedArrays
from repro.rebalance.simstate import SimulatedState
from repro.rebalance.view import ClusterStateView, VmView

#: The planner's three goals, in execution priority order.
GOALS = ("pressure", "drain", "consolidate")


@dataclass(frozen=True)
class PlannedMove:
    """One scored, admissibility-checked candidate migration."""

    vm_name: str
    source: str
    target: str
    reason: str  # one of GOALS
    demand_mhz: float
    memory_mb: int
    transfer_s: float
    downtime_s: float
    cost_s: float
    relief_mhz: float  # pressure relieved / guarantee MHz freed
    score: float  # relief_mhz / cost_s
    #: Eq. 7 headroom the target keeps once this move (and every move
    #: planned before it this round) lands — never negative by design.
    target_headroom_after_mhz: float = 0.0


@dataclass
class MigrationPlan:
    """One round's bounded batch of moves, plus why candidates fell out."""

    t: float
    seed: int
    moves: List[PlannedMove] = field(default_factory=list)
    considered: int = 0
    skipped: Dict[str, int] = field(default_factory=dict)
    #: Cluster pressure before/after, for the ledger and `plan` output.
    pressure_before_mhz: float = 0.0
    pressure_after_mhz: float = 0.0
    fragmentation_before: float = 0.0

    def moves_by_reason(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for move in self.moves:
            out[move.reason] = out.get(move.reason, 0) + 1
        return out

    def total_cost_s(self) -> float:
        return sum(m.cost_s for m in self.moves)

    def _skip(self, reason: str, count: int = 1) -> None:
        self.skipped[reason] = self.skipped.get(reason, 0) + count


@dataclass(frozen=True)
class PlannerConfig:
    """Batch bounds and goal knobs for one planner instance."""

    max_moves_per_round: int = 8
    #: Per-round cap on moves touching one node as source or target
    #: (drain ignores it for the drained source — evacuation must end).
    max_moves_per_node: int = 2
    allocation_ratio: float = 1.0
    consolidate: bool = True
    #: A used node at or below this utilisation is an evacuation
    #: candidate for the consolidation goal.
    consolidate_below: float = 0.35

    def __post_init__(self) -> None:
        if self.max_moves_per_round < 1:
            raise ValueError("max_moves_per_round must be >= 1")
        if self.max_moves_per_node < 1:
            raise ValueError("max_moves_per_node must be >= 1")
        if self.allocation_ratio <= 0:
            raise ValueError("allocation_ratio must be positive")
        if not 0.0 < self.consolidate_below < 1.0:
            raise ValueError("consolidate_below must be in (0, 1)")


class MigrationPlanner:
    """Produces one bounded, deterministic plan per cluster snapshot."""

    def __init__(
        self,
        model: Optional[MigrationModel] = None,
        config: Optional[PlannerConfig] = None,
    ) -> None:
        self.model = model or MigrationModel()
        self.config = config or PlannerConfig()

    def plan(
        self,
        view: Union[ClusterStateView, ClusterStateArrays],
        *,
        drain: Sequence[str] = (),
        seed: int = 0,
    ) -> MigrationPlan:
        """Score one round of moves against the frozen snapshot.

        Accepts either snapshot dialect: the frozen-dataclass
        :class:`ClusterStateView` plans through the scalar
        :class:`SimulatedState`; the SoA :class:`ClusterStateArrays`
        through :class:`SimulatedArrays`, whose best-fit target scan is
        one masked NumPy reduction per move instead of a Python loop
        over every node.  Both paths emit bit-identical plans for the
        same snapshot + seed (fuzzed in ``tests/rebalance``).
        """
        for node_id in drain:
            if node_id not in view.nodes:
                raise KeyError(f"unknown drain node: {node_id}")
        vectorized = isinstance(view, ClusterStateArrays)
        if vectorized:
            state: Union[SimulatedState, SimulatedArrays] = SimulatedArrays(
                view, allocation_ratio=self.config.allocation_ratio
            )
        else:
            state = SimulatedState(
                view, allocation_ratio=self.config.allocation_ratio
            )
        plan = MigrationPlan(
            t=view.t,
            seed=seed,
            pressure_before_mhz=view.total_pressure_mhz(),
            fragmentation_before=view.fragmentation_score(),
        )
        # Seeded tie-break rank per node: stable within the round, so
        # equal-headroom targets resolve by seed instead of dict order.
        # Both dialects draw the rank stream over the same sorted ids,
        # so rank[node] is seed-equal across scalar and vectorized runs.
        rng = random.Random(seed)
        self._rank = {node_id: rng.random() for node_id in sorted(state.nodes)}
        self._node_moves: Dict[str, int] = {}
        if vectorized:
            self._slot_of: Optional[Dict[str, int]] = state.node_index
            self._rank_arr: Optional[np.ndarray] = np.asarray(
                [self._rank[node_id] for node_id in state.node_ids]
            )
            self._moves_arr: Optional[np.ndarray] = np.zeros(
                len(state.node_ids), dtype=np.int64
            )
        else:
            self._slot_of = None
            self._rank_arr = None
            self._moves_arr = None
        drain_set = set(drain)

        self._plan_pressure(state, plan, drain_set)
        self._plan_drain(state, plan, drain_set)
        if self.config.consolidate:
            self._plan_consolidate(state, plan, drain_set)

        plan.pressure_after_mhz = sum(
            n.pressure_mhz for n in state.nodes.values()
        )
        return plan

    # -- goal passes ----------------------------------------------------------

    def _plan_pressure(
        self, state: SimulatedState, plan: MigrationPlan, drain: set
    ) -> None:
        pressured = sorted(
            (n for n in state.nodes.values() if n.pressure_mhz > 0),
            key=lambda n: (-n.pressure_mhz, n.node_id),
        )
        for node in pressured:
            if node.node_id in state.pinned:
                plan._skip("source_pinned")
                continue
            while node.pressure_mhz > 0 and not self._exhausted(plan):
                victim = self._pick_pressure_victim(state, node.node_id)
                if victim is None:
                    plan._skip("no_victim")
                    break
                relief = min(victim.demand_mhz, node.pressure_mhz)
                if not self._move(
                    state, plan, victim, reason="pressure",
                    relief_mhz=relief, drain=drain,
                ):
                    break

    def _plan_drain(
        self, state: SimulatedState, plan: MigrationPlan, drain: set
    ) -> None:
        for node_id in sorted(drain):
            if node_id in state.pinned:
                plan._skip("source_pinned")
                continue
            for vm in state.movable_vms_on(node_id):
                if self._exhausted(plan):
                    plan._skip("round_budget")
                    return
                self._move(
                    state, plan, vm, reason="drain",
                    relief_mhz=vm.demand_mhz, drain=drain,
                    ignore_source_cap=True,
                )

    def _plan_consolidate(
        self, state: SimulatedState, plan: MigrationPlan, drain: set
    ) -> None:
        candidates = sorted(
            (
                n
                for n in state.nodes.values()
                if n.powered_on
                and n.num_vms > 0
                and n.node_id not in state.pinned
                and n.node_id not in drain
                and 0.0 < n.utilisation <= self.config.consolidate_below
            ),
            key=lambda n: (n.committed_mhz, n.node_id),
        )
        emptied: set = set()
        for node in candidates:
            if self._exhausted(plan):
                return
            vms = state.movable_vms_on(node.node_id)
            if not vms or len(vms) != node.num_vms:
                plan._skip("consolidate_pinned_vm")
                continue
            # Trial on a clone: the node must empty completely within
            # the remaining budget, else the moves buy nothing.
            trial = state.clone()
            routes: List[Tuple[VmView, str]] = []
            ok = True
            budget = self.config.max_moves_per_round - len(plan.moves)
            for vm in vms:
                if len(routes) >= budget:
                    ok = False
                    break
                target = self._pick_target(
                    trial, vm,
                    exclude=emptied | {node.node_id},
                    used_only=True,
                )
                if target is None:
                    ok = False
                    break
                trial.apply_move(vm.name, target)
                routes.append((vm, target))
            if not ok:
                plan._skip("consolidate_unplaceable")
                continue
            for vm, target in routes:
                state.apply_move(vm.name, target)
                self._record(
                    plan, vm, source=node.node_id, target=target,
                    reason="consolidate", relief_mhz=vm.demand_mhz,
                    headroom_after=state.nodes[target].headroom_mhz,
                )
            emptied.add(node.node_id)

    # -- shared mechanics -----------------------------------------------------

    def _pick_pressure_victim(
        self, state: SimulatedState, node_id: str
    ) -> Optional[VmView]:
        """Smallest VM covering the deficit, else the largest
        (the ThresholdMigrationPolicy rule, in guarantee MHz)."""
        node = state.nodes[node_id]
        vms = state.movable_vms_on(node_id)
        if not vms:
            return None
        covering = [v for v in vms if v.demand_mhz >= node.pressure_mhz]
        if covering:
            return min(covering, key=lambda v: (v.demand_mhz, v.name))
        return max(vms, key=lambda v: (v.demand_mhz, v.name))

    def _pick_target(
        self,
        state: Union[SimulatedState, SimulatedArrays],
        vm: VmView,
        *,
        exclude: set = frozenset(),
        used_only: bool = False,
    ) -> Optional[str]:
        """Best-fit: admissible node keeping the least headroom after
        the move; ties break by seeded rank, then id."""
        if isinstance(state, SimulatedArrays):
            return self._pick_target_arrays(
                state, vm, exclude=exclude, used_only=used_only
            )
        best: Optional[Tuple[float, float, str]] = None
        for node_id in sorted(state.nodes):
            node = state.nodes[node_id]
            if node_id in exclude:
                continue
            if used_only and not node.vm_names:
                continue
            if self._node_moves.get(node_id, 0) >= self.config.max_moves_per_node:
                continue
            if node.pressure_mhz > 0:
                continue  # never add load to a node already in deficit
            if not state.can_accept(vm.name, node_id):
                continue
            key = (
                state.fit_after_mhz(vm.name, node_id),
                self._rank[node_id],
                node_id,
            )
            if best is None or key < best:
                best = key
        return best[2] if best is not None else None

    def _pick_target_arrays(
        self,
        state: SimulatedArrays,
        vm: VmView,
        *,
        exclude: set = frozenset(),
        used_only: bool = False,
    ) -> Optional[str]:
        """Vectorized best-fit — one masked NumPy pass over all nodes.

        Replays the scalar selection exactly: the scalar loop keeps the
        lexicographic minimum of ``(fit, rank, node_id)`` over sorted
        ids, which equals min-fit → min-rank → lowest slot here because
        node slots are in sorted-id order and both dialects compute
        ``fit`` with the same subtraction order.
        """
        candidates, fit = state.admissible_fit(
            vm.name,
            exclude=exclude,
            used_only=used_only,
            node_moves=self._moves_arr,
            max_moves_per_node=self.config.max_moves_per_node,
        )
        if candidates.size == 0:
            return None
        tied = candidates[fit == fit.min()]
        if tied.size > 1:
            ranks = self._rank_arr[tied]
            tied = tied[ranks == ranks.min()]
        return state.node_ids[int(tied[0])]

    def _move(
        self,
        state: SimulatedState,
        plan: MigrationPlan,
        vm: VmView,
        *,
        reason: str,
        relief_mhz: float,
        drain: set,
        ignore_source_cap: bool = False,
    ) -> bool:
        source = state.host_of(vm.name)
        if not ignore_source_cap and (
            self._node_moves.get(source, 0) >= self.config.max_moves_per_node
        ):
            plan._skip("source_budget")
            return False
        target = self._pick_target(state, vm, exclude=drain | {source})
        if target is None:
            plan._skip("no_target")
            return False
        state.apply_move(vm.name, target)
        self._record(
            plan, vm, source=source, target=target,
            reason=reason, relief_mhz=relief_mhz,
            headroom_after=state.nodes[target].headroom_mhz,
        )
        return True

    def _record(
        self,
        plan: MigrationPlan,
        vm: VmView,
        *,
        source: str,
        target: str,
        reason: str,
        relief_mhz: float,
        headroom_after: float,
    ) -> None:
        transfer = self.model.transfer_seconds(vm.memory_mb)
        cost = self.model.total_seconds(vm.memory_mb)
        plan.moves.append(
            PlannedMove(
                vm_name=vm.name,
                source=source,
                target=target,
                reason=reason,
                demand_mhz=vm.demand_mhz,
                memory_mb=vm.memory_mb,
                transfer_s=transfer,
                downtime_s=self.model.downtime_s,
                cost_s=cost,
                relief_mhz=relief_mhz,
                score=relief_mhz / cost if cost > 0 else float("inf"),
                target_headroom_after_mhz=headroom_after,
            )
        )
        plan.considered += 1
        self._node_moves[source] = self._node_moves.get(source, 0) + 1
        self._node_moves[target] = self._node_moves.get(target, 0) + 1
        if self._moves_arr is not None:
            self._moves_arr[self._slot_of[source]] += 1
            self._moves_arr[self._slot_of[target]] += 1

    def _exhausted(self, plan: MigrationPlan) -> bool:
        return len(plan.moves) >= self.config.max_moves_per_round
