"""The rebalance control loop: plan every K control ticks, execute, log.

:class:`RebalanceLoop` is the only piece of the rebalancer that touches
a live cluster, and it does so through a two-method port any driver can
implement (both :class:`~repro.sim.cluster_engine.ClusterSimulation`
and the benchmark's :class:`~repro.rebalance.chaos.ChurnChaosCluster`
do):

* ``rebalance_view() -> ClusterStateView`` — frozen snapshot;
* ``start_migration(vm_name, target_id)`` — begin one live migration,
  returning an event with ``duration_s`` (the driver owns the blackout:
  source+target pinned while in flight, VM paused ``downtime_s`` at
  cut-over).

Drivers may additionally offer ``rebalance_arrays() ->
ClusterStateArrays`` — the structure-of-arrays snapshot dialect.  The
loop's ``dialect`` knob picks the spelling: ``"auto"`` (default) uses
arrays whenever the driver provides them, ``"view"`` / ``"arrays"``
force one side.  The planner emits bit-identical plans from either
dialect, so the knob changes round latency, never behaviour.

Each round: snapshot → plan (:class:`MigrationPlanner`, seeded) →
cross-check the whole batch against the independent plan oracle
(:func:`repro.checking.invariants.check_plan_admissible`; an
inadmissible plan is dropped wholesale — planner bugs must not reach
the cluster) → execute → observe (round/migration histograms, per-goal
counters, a ``rebalance:round`` span) → record every move in the
:class:`~repro.rebalance.ledger.RebalanceLedger` so ``repro explain
--move vm-X`` can reconstruct the decision.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.checking.invariants import check_plan_admissible
from repro.obs.tracing import Histogram, Tracer
from repro.rebalance.ledger import RebalanceLedger
from repro.rebalance.planner import MigrationPlan, MigrationPlanner, PlannedMove


class RebalanceLoop:
    """Runs the planner every ``every`` control ticks and executes plans."""

    def __init__(
        self,
        planner: Optional[MigrationPlanner] = None,
        *,
        every: int = 5,
        seed: int = 0,
        ledger: Optional[RebalanceLedger] = None,
        tracer: Optional[Tracer] = None,
        dialect: str = "auto",
    ) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        if dialect not in ("auto", "view", "arrays"):
            raise ValueError("dialect must be 'auto', 'view' or 'arrays'")
        self.planner = planner or MigrationPlanner()
        self.every = every
        self.seed = seed
        self.ledger = ledger or RebalanceLedger()
        self.tracer = tracer
        self.dialect = dialect
        self.drain: set = set()
        self.rounds_total = 0
        self.migrations_total: Dict[str, int] = {}
        self.migrations_rejected = 0
        self.round_hist = Histogram()
        self.migration_hist = Histogram()
        self.round_durations: List[float] = []
        self.snapshot_durations: List[float] = []
        self.plan_durations: List[float] = []
        self.last_plan: Optional[MigrationPlan] = None
        #: Last snapshot, in whichever dialect the round used.
        self.last_view = None

    # -- drain workflow -------------------------------------------------------

    def request_drain(self, node_id: str) -> None:
        """Flag a node for evacuation; stays flagged until cancelled."""
        self.drain.add(node_id)

    def cancel_drain(self, node_id: str) -> None:
        self.drain.discard(node_id)

    def drained_nodes(self) -> List[str]:
        """Drain-flagged nodes that are now empty (safe to power off)."""
        if self.last_view is None:
            return []
        return sorted(
            node_id
            for node_id in self.drain
            if node_id in self.last_view.nodes
            and not self.last_view.nodes[node_id].vm_names
        )

    # -- the loop -------------------------------------------------------------

    def maybe_rebalance(self, cluster, control_tick: int) -> Optional[MigrationPlan]:
        """Run one round when the control tick hits the period."""
        if control_tick % self.every != 0:
            return None
        return self.rebalance_once(cluster)

    def _snapshot(self, cluster):
        """One cluster snapshot in the configured dialect."""
        if self.dialect == "view":
            return cluster.rebalance_view()
        if self.dialect == "arrays":
            return cluster.rebalance_arrays()
        arrays = getattr(cluster, "rebalance_arrays", None)
        return arrays() if arrays is not None else cluster.rebalance_view()

    def rebalance_once(self, cluster) -> MigrationPlan:
        """Snapshot, plan, oracle-check, execute, observe, ledger."""
        started = time.perf_counter()
        view = self._snapshot(cluster)
        snapshot_done = time.perf_counter()
        round_no = self.rounds_total
        plan = self.planner.plan(
            view, drain=sorted(self.drain & set(view.nodes)), seed=self.seed + round_no
        )
        plan_done = time.perf_counter()
        violations = check_plan_admissible(
            view, plan, allocation_ratio=self.planner.config.allocation_ratio
        )
        executed: List[Dict] = []
        if violations:
            # Defence in depth: the planner only emits moves its what-if
            # state admitted, so a confirmed oracle violation means a
            # planner bug — drop the whole batch rather than risk Eq. 7.
            plan._skip("plan_rejected_by_oracle", len(plan.moves))
            for move in plan.moves:
                executed.append(self._move_record(
                    move, executed=False,
                    reject_reason="; ".join(v.message for v in violations[:2]),
                ))
            plan.moves.clear()
        else:
            for move in plan.moves:
                executed.append(self._execute(cluster, move))
        duration = time.perf_counter() - started

        self.rounds_total += 1
        self.round_hist.observe(duration)
        self.round_durations.append(duration)
        self.snapshot_durations.append(snapshot_done - started)
        self.plan_durations.append(plan_done - snapshot_done)
        self.last_plan = plan
        self.last_view = view
        meta = {
            "round": round_no,
            "t": view.t,
            "seed": self.seed + round_no,
            "every": self.every,
            "drain": sorted(self.drain),
            "pressure_before_mhz": plan.pressure_before_mhz,
            "pressure_after_mhz": plan.pressure_after_mhz,
            "fragmentation_before": plan.fragmentation_before,
            "n_moves": len(executed),
            "moves_by_reason": plan.moves_by_reason(),
            "skipped": dict(plan.skipped),
            "round_seconds": duration,
            "snapshot_seconds": snapshot_done - started,
            "plan_seconds": plan_done - snapshot_done,
        }
        self.ledger.record_round(meta, executed)
        if self.tracer is not None:
            self.tracer.record(
                "rebalance:round",
                trace_id=round_no,
                parent_id=None,
                start_us=self.tracer.now_us() - duration * 1e6,
                duration_us=duration * 1e6,
                attrs={
                    "n_moves": len(plan.moves),
                    "pressure_before_mhz": plan.pressure_before_mhz,
                    "pressure_after_mhz": plan.pressure_after_mhz,
                },
            )
        return plan

    # -- execution ------------------------------------------------------------

    def _execute(self, cluster, move: PlannedMove) -> Dict:
        try:
            event = cluster.start_migration(move.vm_name, move.target)
        except (KeyError, ValueError) as exc:
            # The cluster moved on between snapshot and execution (VM
            # destroyed, capacity changed) — reject this move only.
            self.migrations_rejected += 1
            return self._move_record(move, executed=False, reject_reason=str(exc))
        duration_s = getattr(event, "duration_s", move.cost_s)
        self.migrations_total[move.reason] = (
            self.migrations_total.get(move.reason, 0) + 1
        )
        self.migration_hist.observe(duration_s)
        if self.tracer is not None:
            self.tracer.record(
                "rebalance:migration",
                trace_id=self.rounds_total,
                parent_id=None,
                start_us=self.tracer.now_us(),
                duration_us=duration_s * 1e6,
                attrs={
                    "vm": move.vm_name,
                    "source": move.source,
                    "target": move.target,
                    "reason": move.reason,
                },
            )
        return self._move_record(move, executed=True, duration_s=duration_s)

    @staticmethod
    def _move_record(
        move: PlannedMove,
        *,
        executed: bool,
        duration_s: Optional[float] = None,
        reject_reason: Optional[str] = None,
    ) -> Dict:
        record = {
            "vm": move.vm_name,
            "source": move.source,
            "target": move.target,
            "reason": move.reason,
            "demand_mhz": move.demand_mhz,
            "memory_mb": move.memory_mb,
            "transfer_s": move.transfer_s,
            "downtime_s": move.downtime_s,
            "cost_s": move.cost_s,
            "relief_mhz": move.relief_mhz,
            "score": move.score,
            "target_headroom_after_mhz": move.target_headroom_after_mhz,
            "executed": executed,
        }
        if duration_s is not None:
            record["duration_s"] = duration_s
        if reject_reason is not None:
            record["reject_reason"] = reject_reason
        return record

    def close(self) -> None:
        self.ledger.close()
