"""What-if cluster state the planner mutates instead of the world.

A :class:`SimulatedState` is a mutable copy of a
:class:`~repro.rebalance.view.ClusterStateView`: the planner applies
candidate moves here (tracking planned-in / planned-out sets per node),
checks Eq. 7 and memory admissibility after every tentative move, and
only the moves that survive become a :class:`~repro.rebalance.planner.
MigrationPlan`.  Live controllers, hypervisors and node managers are
never touched.

``allocation_ratio`` is the conventional overcommit knob: it scales
every node's frequency capacity, exactly like the consolidation factor
of :class:`~repro.placement.constraints.CoreSplittingConstraint`.  At
the default 1.0 the planner only produces strictly Eq. 7-admissible
placements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.rebalance.view import ClusterStateView, NodeView, VmView

#: Same float slack as the placement constraint (Eq. 7 comparisons).
EPS_MHZ = 1e-6


@dataclass
class SimulatedNode:
    """One node's running account inside the what-if state."""

    node_id: str
    capacity_mhz: float
    fmax_mhz: float
    memory_mb: int
    committed_mhz: float
    committed_memory_mb: int
    powered_on: bool = True
    vm_names: Set[str] = field(default_factory=set)
    planned_in: Set[str] = field(default_factory=set)
    planned_out: Set[str] = field(default_factory=set)

    @property
    def pressure_mhz(self) -> float:
        return max(0.0, self.committed_mhz - self.capacity_mhz)

    @property
    def headroom_mhz(self) -> float:
        return self.capacity_mhz - self.committed_mhz

    @property
    def utilisation(self) -> float:
        if self.capacity_mhz <= 0:
            return float("inf") if self.committed_mhz > 0 else 0.0
        return self.committed_mhz / self.capacity_mhz

    @property
    def num_vms(self) -> int:
        return len(self.vm_names)


class SimulatedState:
    """Mutable planning copy of one cluster snapshot."""

    def __init__(
        self,
        view: ClusterStateView,
        *,
        allocation_ratio: float = 1.0,
        pinned: Iterable[str] = (),
    ) -> None:
        if allocation_ratio <= 0:
            raise ValueError("allocation_ratio must be positive")
        self.allocation_ratio = allocation_ratio
        self.pinned: Set[str] = set(pinned) | set(view.pinned_nodes())
        self.immovable: Set[str] = set(view.migrating_vms())
        self.vms: Dict[str, VmView] = dict(view.vms)
        self._host: Dict[str, str] = {
            vm.name: vm.node_id for vm in view.vms.values()
        }
        self.nodes: Dict[str, SimulatedNode] = {}
        for node_id, node in view.nodes.items():
            self.nodes[node_id] = SimulatedNode(
                node_id=node_id,
                capacity_mhz=node.capacity_mhz * allocation_ratio,
                fmax_mhz=node.fmax_mhz,
                memory_mb=node.memory_mb,
                committed_mhz=node.committed_mhz,
                committed_memory_mb=node.committed_memory_mb,
                powered_on=node.powered_on,
                vm_names=set(node.vm_names),
            )

    def clone(self) -> "SimulatedState":
        """Independent copy for trial placements (consolidation probes)."""
        out = object.__new__(SimulatedState)
        out.allocation_ratio = self.allocation_ratio
        out.pinned = set(self.pinned)
        out.immovable = set(self.immovable)
        out.vms = dict(self.vms)
        out._host = dict(self._host)
        out.nodes = {
            node_id: SimulatedNode(
                node_id=n.node_id,
                capacity_mhz=n.capacity_mhz,
                fmax_mhz=n.fmax_mhz,
                memory_mb=n.memory_mb,
                committed_mhz=n.committed_mhz,
                committed_memory_mb=n.committed_memory_mb,
                powered_on=n.powered_on,
                vm_names=set(n.vm_names),
                planned_in=set(n.planned_in),
                planned_out=set(n.planned_out),
            )
            for node_id, n in self.nodes.items()
        }
        return out

    # -- queries --------------------------------------------------------------

    def host_of(self, vm_name: str) -> str:
        return self._host[vm_name]

    def movable_vms_on(self, node_id: str) -> List[VmView]:
        """Hosted VMs eligible to leave, largest demand first (ties by
        name) — the order bin-packing heuristics want."""
        out = [
            self.vms[name]
            for name in self.nodes[node_id].vm_names
            if name not in self.immovable
        ]
        out.sort(key=lambda v: (-v.demand_mhz, v.name))
        return out

    def can_accept(self, vm_name: str, node_id: str) -> bool:
        """Would Eq. 7 (x allocation_ratio) and memory still hold?"""
        vm = self.vms.get(vm_name)
        node = self.nodes.get(node_id)
        if vm is None or node is None:
            return False
        if not node.powered_on or node_id in self.pinned:
            return False
        if node_id == self._host[vm_name]:
            return False
        if vm.vfreq_mhz > node.fmax_mhz:
            return False  # a guarantee above F_MAX is unsatisfiable (Eq. 2)
        freq_ok = (
            node.committed_mhz + vm.demand_mhz <= node.capacity_mhz + EPS_MHZ
        )
        mem_ok = node.committed_memory_mb + vm.memory_mb <= node.memory_mb
        return freq_ok and mem_ok

    def fit_after_mhz(self, vm_name: str, node_id: str) -> float:
        """Headroom the target would keep — the best-fit sort key."""
        return (
            self.nodes[node_id].headroom_mhz - self.vms[vm_name].demand_mhz
        )

    # -- mutation -------------------------------------------------------------

    def apply_move(self, vm_name: str, target_id: str) -> None:
        """Commit one tentative move inside the what-if state."""
        if vm_name in self.immovable:
            raise ValueError(f"{vm_name} is pinned by an in-flight migration")
        if not self.can_accept(vm_name, target_id):
            raise ValueError(
                f"{vm_name} does not fit on {target_id} "
                "(Eq. 7, memory, power or pinning)"
            )
        vm = self.vms[vm_name]
        source = self.nodes[self._host[vm_name]]
        target = self.nodes[target_id]
        source.vm_names.discard(vm_name)
        source.planned_out.add(vm_name)
        source.committed_mhz -= vm.demand_mhz
        source.committed_memory_mb -= vm.memory_mb
        target.vm_names.add(vm_name)
        target.planned_in.add(vm_name)
        target.committed_mhz += vm.demand_mhz
        target.committed_memory_mb += vm.memory_mb
        self._host[vm_name] = target_id
