"""Cluster rebalancer: frequency-guarantee-aware live migration.

The control plane ROADMAP item 1 asks for, layered *on top of* the
per-node controllers: snapshot the cluster
(:class:`~repro.rebalance.view.ClusterStateView`), plan bounded batches
of Eq. 7-admissible moves on a what-if copy
(:class:`~repro.rebalance.simstate.SimulatedState` /
:class:`~repro.rebalance.planner.MigrationPlanner` — relieve guarantee
pressure, consolidate, drain), execute them with in-flight blackouts
through :class:`~repro.rebalance.loop.RebalanceLoop`, and make every
move explainable via the :class:`~repro.rebalance.ledger.
RebalanceLedger` (``repro explain --move``).
"""

from repro.rebalance.arrays import ClusterStateArrays, SimulatedArrays
from repro.rebalance.chaos import (
    ChaosConfig,
    ChaosResult,
    ChurnChaosCluster,
    MigrationStarted,
)
from repro.rebalance.ledger import (
    RebalanceLedger,
    explain_move,
    explain_move_from_entries,
    load_rebalance_jsonl,
    lookup_move,
)
from repro.rebalance.loop import RebalanceLoop
from repro.rebalance.planner import (
    GOALS,
    MigrationPlan,
    MigrationPlanner,
    PlannedMove,
    PlannerConfig,
)
from repro.rebalance.simstate import SimulatedNode, SimulatedState
from repro.rebalance.view import (
    ClusterStateView,
    InFlightView,
    NodeView,
    VmView,
)

__all__ = [
    "ChaosConfig",
    "ChaosResult",
    "ChurnChaosCluster",
    "ClusterStateArrays",
    "ClusterStateView",
    "GOALS",
    "InFlightView",
    "MigrationPlan",
    "MigrationPlanner",
    "MigrationStarted",
    "NodeView",
    "PlannedMove",
    "PlannerConfig",
    "RebalanceLedger",
    "RebalanceLoop",
    "SimulatedArrays",
    "SimulatedNode",
    "SimulatedState",
    "VmView",
    "explain_move",
    "explain_move_from_entries",
    "load_rebalance_jsonl",
    "lookup_move",
]
