"""Performance-based pricing: tiered base rates + surplus-market spot.

The model follows the two Lučanin et al. performance-based-pricing
papers (arXiv:1809.05840, arXiv:1809.05842): a customer pays for the
CPU *performance actually allocated* — MHz-seconds, not wall-clock VM
hours — and is refunded when the provider misses the promised
performance level.  Mapped onto this repo's paper (Eq. 2 guarantees,
the Alg. 1 surplus auction), each enforced allocation decomposes into
three billable cycle classes, metered at distinct rates:

* **guaranteed** — cycles inside the Eq. 5 base reservation (at most
  the Eq. 2 guarantee).  Priced by the *tier* of the VM's guaranteed
  virtual frequency (small/medium/large bands), the tiered base rates
  of the Lučanin model.
* **purchased** — cycles bought in the Alg. 1 auction with credits.
  Priced at the per-tick *spot rate*, which rises with the fraction of
  the surplus market actually sold that tick (scarcity pricing).
* **free** — stage-5 leftover shares.  Same surplus market, but
  distributed without competition, so they are priced at the spot rate
  times a flat discount.

SLA credits are the refund side: any tick a vCPU with saturated demand
(estimate at or above its Eq. 2 guarantee — the precondition of the
``eq2_guarantee`` oracle) is allocated *below* the guarantee, the
shortfall is refunded at the tier rate times ``sla_refund_multiplier``.
Degraded-mode fallbacks (no estimate) count as misses too: the
guarantee was promised and not demonstrably delivered.

Units: one *cycle* is one µs of CPU at host ``F_MAX`` per period
(Eq. 1), so one cycle is worth ``fmax_mhz * 1e-6`` MHz-seconds — see
:func:`mhz_seconds_per_cycle`.  Rates are "credits per MHz-second";
the currency is abstract (the tests only ever assert conservation and
exact oracle re-derivation, never absolute value).

Everything in this module is a *pure function of ledger-visible data*
(decision records plus per-tick meta), which is what lets
:mod:`repro.checking.billing_oracle` re-derive every invoice line from
the PR 5 decision ledger alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple


def mhz_seconds_per_cycle(fmax_mhz: float) -> float:
    """MHz-seconds delivered by one cycle (1 µs of CPU at ``F_MAX``).

    A vCPU holding a full period ``p_us`` of cycles runs at ``fmax``
    MHz for ``p`` seconds — ``fmax * p`` MHz-s over ``p_us = p * 1e6``
    cycles, i.e. ``fmax * 1e-6`` per cycle, independent of the period.
    """
    return fmax_mhz * 1e-6


def sold_fraction(market_initial: float, market_left: float) -> float:
    """Fraction of the tick's surplus market the auction actually sold."""
    if market_initial <= 0:
        return 0.0
    return (market_initial - market_left) / market_initial


@dataclass(frozen=True)
class PriceTier:
    """One band of guaranteed virtual frequency and its base rate."""

    name: str
    #: Upper bound (inclusive) of guaranteed vfreq covered by this tier;
    #: the last tier uses ``math.inf``.
    max_vfreq_mhz: float
    #: Credits per MHz-second of guaranteed-class usage.
    rate: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tier name must be non-empty")
        if self.max_vfreq_mhz <= 0:
            raise ValueError("max_vfreq_mhz must be positive")
        if self.rate < 0:
            raise ValueError("tier rate must be >= 0")


@dataclass(frozen=True)
class PriceBook:
    """All pricing knobs, frozen — shared config, not shared arithmetic.

    The billing oracle deliberately re-implements every formula below
    inline (the engine can never certify its own arithmetic); only this
    *data* — tier bounds and rate constants — is shared between them,
    the same way :func:`~repro.checking.invariants.check_plan_admissible`
    shares the planner's ``allocation_ratio`` input but not its code.
    """

    tiers: Tuple[PriceTier, ...]
    #: Spot rate (credits per MHz-s) when the auction sold nothing.
    spot_base_rate: float
    #: Linear scarcity coefficient: the spot rate is
    #: ``spot_base_rate * (1 + spot_slope * sold_fraction)``.
    spot_slope: float
    #: Free-share cycles are priced at ``spot_rate * free_discount``.
    free_discount: float
    #: SLA shortfall refunded at ``tier.rate * sla_refund_multiplier``.
    sla_refund_multiplier: float

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ValueError("price book needs at least one tier")
        bounds = [t.max_vfreq_mhz for t in self.tiers]
        if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("tiers must have strictly ascending bounds")
        if not math.isinf(self.tiers[-1].max_vfreq_mhz):
            raise ValueError("last tier must be unbounded (math.inf)")
        if self.spot_base_rate < 0 or self.spot_slope < 0:
            raise ValueError("spot rate parameters must be >= 0")
        if not 0.0 <= self.free_discount <= 1.0:
            raise ValueError("free_discount must be in [0, 1]")
        if self.sla_refund_multiplier < 0:
            raise ValueError("sla_refund_multiplier must be >= 0")

    def tier_of(self, vfreq_mhz: float) -> PriceTier:
        """The pricing tier covering one guaranteed virtual frequency."""
        for tier in self.tiers:
            if vfreq_mhz <= tier.max_vfreq_mhz:
                return tier
        raise ValueError(f"no tier covers vfreq {vfreq_mhz}")  # pragma: no cover

    def spot_rate(self, fraction_sold: float) -> float:
        """Per-tick surplus-market rate (credits per MHz-second)."""
        return self.spot_base_rate * (1.0 + self.spot_slope * fraction_sold)


#: Tier bands chosen so the paper's three templates (500/1200/1800 MHz)
#: land in distinct tiers; rates roughly double tier over tier, and the
#: surplus market is always cheaper than any committed guarantee.
DEFAULT_PRICE_BOOK = PriceBook(
    tiers=(
        PriceTier("small", 800.0, 2.0e-4),
        PriceTier("medium", 1500.0, 3.2e-4),
        PriceTier("large", math.inf, 4.5e-4),
    ),
    spot_base_rate=1.0e-4,
    spot_slope=1.0,
    free_discount=0.25,
    sla_refund_multiplier=2.0,
)
