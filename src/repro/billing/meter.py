"""Tenant-aware usage metering from finished controller reports.

:class:`BillingEngine` hooks the controller exactly like the
observability hub: ``controller.billing`` is ``None`` by default (one
attribute check per tick), and when attached the engine works *post
hoc* from each finished :class:`~repro.core.controller.ControllerReport`
plus the controller's own registries — it never touches the stages, so
report and ledger streams stay bit-identical with billing on or off
(``tests/billing/test_transparency.py`` proves this across all three
engines).

The metering arithmetic lives in :class:`UsageMeter` and the
module-level :func:`decompose`, both pure functions of ledger-visible
values.  That is a deliberate contract: every accumulation performed
here is independently re-derived from the PR 5 decision ledger by
:mod:`repro.checking.billing_oracle` with *exact* float equality, so
the row order below must mirror the ledger's decision order (samples
first, then degraded-only paths — the same walk
``Observability._build_records`` does).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.billing.pricing import (
    DEFAULT_PRICE_BOOK,
    PriceBook,
    mhz_seconds_per_cycle,
    sold_fraction,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.controller import ControllerReport, VirtualFrequencyController

#: Usage accumulator key: (tenant, vm, vcpu, tier, kind).  The tier is
#: part of the key because ``set_vfreq`` renegotiation can move a VM
#: between tiers mid-run, and revenue must stay attributed to the tier
#: it was earned under (the ``vfreq_revenue_total{tenant,tier}``
#: Prometheus family depends on this).
UsageKey = Tuple[str, str, int, str, str]
#: SLA credit accumulator key: (tenant, vm, vcpu, tier).
CreditKey = Tuple[str, str, int, str]

#: Billable cycle classes, in metering order.
KINDS = ("guaranteed", "purchased", "free")


def decompose(
    base: Optional[float],
    purchased: float,
    fallback: Optional[float],
    allocation: float,
) -> Tuple[float, float, float]:
    """Split one enforced allocation into billable cycle classes.

    The stage-6 allocation is ``min(base + purchased + free_share,
    p_us)`` (or the degraded-mode fallback), so the split charges the
    base reservation first, then auction purchases, and the remainder
    is the freely-distributed share — each component clipped so the
    three classes are non-negative and sum exactly to ``allocation``.
    Degraded fallbacks (and ledger rows without a base, i.e. without a
    fresh estimate) bill entirely as guaranteed-class usage: the
    customer holds a guarantee-backed cap either way.
    """
    if fallback is not None or base is None:
        return allocation, 0.0, 0.0
    guaranteed = min(base, allocation)
    purchased_c = min(purchased, allocation - guaranteed)
    free_c = allocation - guaranteed - purchased_c
    return guaranteed, purchased_c, free_c


class UsageMeter:
    """Per-(tenant, VM, vCPU) MHz-second accumulators, priced per tick.

    State is three maps plus two per-tick trails:

    * ``usage``:   (tenant, vm, vcpu, tier, kind) -> [cycles, mhz_s, amount]
    * ``credits``: (tenant, vm, vcpu, tier) -> [shortfall cycles, mhz_s, amount]
    * ``tick_revenue`` / ``tick_credits``: 1-based control tick -> total

    Accumulation order inside one tick follows the caller's row order
    (the ledger's decision order), and ticks arrive in ascending order,
    so two meters fed the same rows hold bit-identical floats — the
    property the snapshot/restore additivity test and the oracle's
    exact-equality audit both rely on.
    """

    def __init__(self, book: Optional[PriceBook] = None) -> None:
        self.book = book if book is not None else DEFAULT_PRICE_BOOK
        self.usage: Dict[UsageKey, List[float]] = {}
        self.credits: Dict[CreditKey, List[float]] = {}
        self.tick_revenue: Dict[int, float] = {}
        self.tick_credits: Dict[int, float] = {}

    # -- one tick ---------------------------------------------------------------

    def meter_tick(
        self,
        *,
        tick: int,
        fmax_mhz: float,
        market_initial: float,
        market_left: float,
        rows: List[Dict],
    ) -> None:
        """Meter one finished tick.

        ``tick`` is the 1-based control tick (ledger ``meta["tick"] +
        1`` — the same numbering trace replay uses for ``t``).  Each
        row carries the ledger-visible decision fields: ``tenant``,
        ``vm``, ``vcpu``, ``vfreq``, ``guarantee``, ``estimate``,
        ``base``, ``purchased``, ``fallback``, ``allocation``.
        """
        book = self.book
        factor = mhz_seconds_per_cycle(fmax_mhz)
        spot = book.spot_rate(sold_fraction(market_initial, market_left))
        revenue = self.tick_revenue.get(tick, 0.0)
        refunds = self.tick_credits.get(tick, 0.0)
        for row in rows:
            vfreq = row["vfreq"]
            allocation = row["allocation"]
            if vfreq is None or allocation is None:
                continue
            tier = book.tier_of(vfreq)
            guaranteed_c, purchased_c, free_c = decompose(
                row["base"], row["purchased"], row["fallback"], allocation
            )
            rates = (tier.rate, spot, spot * book.free_discount)
            for kind, cycles, rate in zip(
                KINDS, (guaranteed_c, purchased_c, free_c), rates
            ):
                if cycles == 0.0:
                    continue
                amount = cycles * factor * rate
                self._add(
                    self.usage,
                    (row["tenant"], row["vm"], row["vcpu"], tier.name, kind),
                    cycles, cycles * factor, amount,
                )
                revenue += amount
            guarantee = row["guarantee"]
            estimate = row["estimate"]
            if (
                guarantee is not None
                and allocation < guarantee
                and (estimate is None or estimate >= guarantee)
            ):
                shortfall = guarantee - allocation
                amount = (
                    shortfall * factor * tier.rate * book.sla_refund_multiplier
                )
                self._add(
                    self.credits,
                    (row["tenant"], row["vm"], row["vcpu"], tier.name),
                    shortfall, shortfall * factor, amount,
                )
                refunds += amount
        self.tick_revenue[tick] = revenue
        self.tick_credits[tick] = refunds

    @staticmethod
    def _add(store, key, cycles: float, mhz_s: float, amount: float) -> None:
        cell = store.get(key)
        if cell is None:
            store[key] = [cycles, mhz_s, amount]
        else:
            cell[0] += cycles
            cell[1] += mhz_s
            cell[2] += amount

    # -- snapshot / restore -----------------------------------------------------

    def state(self) -> Dict:
        """All accumulator state as a JSON-serialisable dict."""
        return {
            "usage": [
                list(key) + list(cell) for key, cell in self.usage.items()
            ],
            "credits": [
                list(key) + list(cell) for key, cell in self.credits.items()
            ],
            "tick_revenue": {str(t): v for t, v in self.tick_revenue.items()},
            "tick_credits": {str(t): v for t, v in self.tick_credits.items()},
        }

    def load_state(self, state: Dict) -> None:
        """Replace all accumulators with a previously captured state.

        JSON round-trips preserve doubles exactly, so a meter restored
        from ``json.loads(json.dumps(state()))`` continues bit-identically
        — the additivity contract of the property suite.
        """
        self.usage = {
            (row[0], row[1], int(row[2]), row[3], row[4]):
                [row[5], row[6], row[7]]
            for row in state["usage"]
        }
        self.credits = {
            (row[0], row[1], int(row[2]), row[3]): [row[4], row[5], row[6]]
            for row in state["credits"]
        }
        self.tick_revenue = {
            int(t): v for t, v in state["tick_revenue"].items()
        }
        self.tick_credits = {
            int(t): v for t, v in state["tick_credits"].items()
        }


@dataclass
class BillingEngine:
    """The controller-side billing attachment (meter + price book).

    Attach with :meth:`attach`; the controller calls :meth:`on_tick`
    from ``_finish`` after the observability hub, so the ledger entry
    for a tick always exists by the time it is metered.
    """

    book: PriceBook
    node_id: str = "node-0"

    def __post_init__(self) -> None:
        self.meter = UsageMeter(self.book)

    @classmethod
    def attach(
        cls,
        controller: "VirtualFrequencyController",
        book: Optional[PriceBook] = None,
        *,
        node_id: str = "node-0",
    ) -> "BillingEngine":
        """Wire a billing engine onto an already-built controller."""
        engine = cls(book if book is not None else DEFAULT_PRICE_BOOK,
                     node_id=node_id)
        controller.billing = engine
        return engine

    # -- the per-tick hook -------------------------------------------------------

    def on_tick(
        self,
        controller: "VirtualFrequencyController",
        report: "ControllerReport",
        tick: int,
    ) -> None:
        """Meter one finished tick (``tick`` is the 0-based count)."""
        auction = report.auction
        self.meter.meter_tick(
            tick=tick + 1,
            fmax_mhz=controller.fmax_mhz,
            market_initial=report.market_initial,
            market_left=auction.market_left if auction else 0.0,
            rows=self._rows(controller, report),
        )

    def _rows(self, controller, report) -> List[Dict]:
        """Billable rows in ledger order (samples, then degraded-only).

        This mirrors ``Observability._build_records`` walk for walk —
        including the config-A early-out and the Eq. 5 base computation
        — so the meter and the ledger agree on every input the oracle
        later re-derives from.
        """
        if not report.allocations:
            return []  # config A / empty host: nothing enforced
        from repro.core.backend import vm_component

        cfg = controller.config
        tenants = controller._vm_tenant
        vfreqs = controller._vm_vfreq
        guarantees = controller._guarantee
        purchased = report.auction.purchased if report.auction else {}
        degraded = report.degraded
        rows: List[Dict] = []
        seen = set()
        for s in report.samples:
            path = s.cgroup_path
            alloc = report.allocations.get(path)
            if alloc is None:
                continue
            seen.add(path)
            d = report.decisions.get(path)
            vm = s.vm_name
            g = guarantees.get(vm)
            base = None
            if d is not None and g is not None:
                base = min(d.estimate_cycles, g)
                if cfg.reserve_guarantee:
                    base = max(base, g)
            rows.append({
                "tenant": tenants.get(vm, "default"),
                "vm": vm,
                "vcpu": s.vcpu_index,
                "vfreq": vfreqs.get(vm),
                "guarantee": g,
                "estimate": d.estimate_cycles if d is not None else None,
                "base": base,
                "purchased": purchased.get(path, 0.0),
                "fallback": degraded.get(path),
                "allocation": alloc,
            })
        for path, alloc in report.allocations.items():
            if path in seen:
                continue
            vm = vm_component(path, controller.machine_slice)
            rows.append({
                "tenant": tenants.get(vm, "default"),
                "vm": vm,
                "vcpu": _vcpu_index_of(path),
                "vfreq": vfreqs.get(vm),
                "guarantee": guarantees.get(vm),
                "estimate": None,
                "base": None,
                "purchased": purchased.get(path, 0.0),
                "fallback": degraded.get(path, alloc),
                "allocation": alloc,
            })
        return rows

    # -- results ------------------------------------------------------------------

    def invoices(self):
        """Per-tenant invoices from the current accumulators."""
        from repro.billing.invoice import build_invoices

        return build_invoices(
            self.meter.usage, self.meter.credits,
            book=self.book, node=self.node_id,
        )

    # -- snapshot / restore --------------------------------------------------------

    def state(self) -> Dict:
        return self.meter.state()

    def load_state(self, state: Dict) -> None:
        self.meter.load_state(state)

    def state_json(self) -> str:
        return json.dumps(self.state(), sort_keys=True)


def _vcpu_index_of(path: str) -> int:
    """Trailing vcpu index of a cgroup path (``.../vcpu3`` -> 3)."""
    tail = path.rsplit("/", 1)[-1]
    digits = ""
    for ch in reversed(tail):
        if ch.isdigit():
            digits = ch + digits
        else:
            break
    return int(digits) if digits else -1
