"""Invoice construction and rendering (JSON + plain-text tables).

An invoice is a pure projection of meter state — grouping, sorting and
summing, no pricing arithmetic — so both the billing engine and the
independent oracle build their invoices through this module and any
disagreement is attributable to *metering*, never to rendering.

Line totals use ``math.fsum`` over deterministically sorted lines, so
"sum of the per-tenant invoices" and "sum over all metered lines" are
the same atoms in the same order — the revenue-conservation property
the Hypothesis suite asserts.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.billing.pricing import DEFAULT_PRICE_BOOK, PriceBook


@dataclass(frozen=True)
class InvoiceLine:
    """One billed (VM, vCPU, cycle-class) aggregate."""

    tenant: str
    vm: str
    vcpu: int
    tier: str
    kind: str  # "guaranteed" | "purchased" | "free"
    cycles: float
    mhz_s: float
    amount: float


@dataclass(frozen=True)
class CreditLine:
    """One SLA-shortfall refund aggregate (always subtracted)."""

    tenant: str
    vm: str
    vcpu: int
    tier: str
    shortfall_cycles: float
    mhz_s: float
    amount: float


@dataclass
class Invoice:
    """One tenant's revenue and refunds on one node."""

    tenant: str
    node: str
    lines: List[InvoiceLine] = field(default_factory=list)
    credit_lines: List[CreditLine] = field(default_factory=list)

    @property
    def revenue(self) -> float:
        return math.fsum(line.amount for line in self.lines)

    @property
    def sla_credits(self) -> float:
        return math.fsum(line.amount for line in self.credit_lines)

    @property
    def total(self) -> float:
        """What the tenant owes: revenue minus SLA refunds."""
        return self.revenue - self.sla_credits

    def as_dict(self) -> Dict:
        return {
            "tenant": self.tenant,
            "node": self.node,
            "lines": [vars(line) for line in self.lines],
            "credit_lines": [vars(line) for line in self.credit_lines],
            "revenue": self.revenue,
            "sla_credits": self.sla_credits,
            "total": self.total,
        }


def build_invoices(
    usage: Dict,
    credits: Dict,
    *,
    book: Optional[PriceBook] = None,
    node: str = "node-0",
) -> List[Invoice]:
    """Per-tenant invoices from raw meter accumulators.

    ``usage`` maps ``(tenant, vm, vcpu, tier, kind)`` to ``[cycles,
    mhz_s, amount]`` and ``credits`` maps ``(tenant, vm, vcpu, tier)``
    likewise — the exact shapes
    :class:`~repro.billing.meter.UsageMeter` (and the oracle's
    re-derivation) hold.  ``book`` is accepted for signature symmetry
    with the metering side; invoices never reprice anything.
    """
    del book  # projection only — no pricing arithmetic here
    invoices: Dict[str, Invoice] = {}

    def invoice_for(tenant: str) -> Invoice:
        inv = invoices.get(tenant)
        if inv is None:
            inv = invoices[tenant] = Invoice(tenant=tenant, node=node)
        return inv

    for key in sorted(usage):
        tenant, vm, vcpu, tier, kind = key
        cycles, mhz_s, amount = usage[key]
        invoice_for(tenant).lines.append(InvoiceLine(
            tenant=tenant, vm=vm, vcpu=vcpu, tier=tier, kind=kind,
            cycles=cycles, mhz_s=mhz_s, amount=amount,
        ))
    for key in sorted(credits):
        tenant, vm, vcpu, tier = key
        cycles, mhz_s, amount = credits[key]
        invoice_for(tenant).credit_lines.append(CreditLine(
            tenant=tenant, vm=vm, vcpu=vcpu, tier=tier,
            shortfall_cycles=cycles, mhz_s=mhz_s, amount=amount,
        ))
    return [invoices[tenant] for tenant in sorted(invoices)]


def invoices_to_json(invoices: List[Invoice]) -> str:
    """All invoices as one deterministic JSON document."""
    return json.dumps(
        [invoice.as_dict() for invoice in invoices], sort_keys=True
    )


def render_invoices(invoices: List[Invoice], *, per_vcpu: bool = False) -> str:
    """Plain-text tables: one per tenant, plus a cluster summary."""
    from repro.sim.report import render_table

    chunks: List[str] = []
    for invoice in invoices:
        if per_vcpu:
            rows = [
                [l.vm, str(l.vcpu), l.tier, l.kind,
                 f"{l.mhz_s:.1f}", f"{l.amount:.6f}"]
                for l in invoice.lines
            ]
        else:
            rows = _vm_rows(invoice)
        for c in invoice.credit_lines:
            rows.append([
                c.vm, str(c.vcpu) if per_vcpu else "-", c.tier,
                "sla-credit", f"{c.mhz_s:.1f}", f"-{c.amount:.6f}",
            ])
        headers = ["vm", "vcpu" if per_vcpu else "vcpus", "tier", "kind",
                   "MHz-s", "amount"]
        chunks.append(render_table(
            headers, rows,
            title=f"invoice: tenant {invoice.tenant} on {invoice.node}",
        ))
        chunks.append(
            f"  revenue {invoice.revenue:.6f}  "
            f"sla credits {invoice.sla_credits:.6f}  "
            f"total {invoice.total:.6f}"
        )
    summary = [
        [inv.tenant, str(len(inv.lines)), f"{inv.revenue:.6f}",
         f"{inv.sla_credits:.6f}", f"{inv.total:.6f}"]
        for inv in invoices
    ]
    chunks.append(render_table(
        ["tenant", "lines", "revenue", "sla credits", "total"],
        summary, title="billing summary",
    ))
    return "\n".join(chunks)


def _vm_rows(invoice: Invoice) -> List[List[str]]:
    """Per-VM/per-kind aggregation of an invoice's per-vCPU lines."""
    agg: Dict = {}
    for line in invoice.lines:
        key = (line.vm, line.kind)
        cell = agg.setdefault(key, [line.tier, set(), 0.0, 0.0])
        cell[1].add(line.vcpu)
        cell[2] += line.mhz_s
        cell[3] += line.amount
    return [
        [vm, str(len(cell[1])), cell[0], kind,
         f"{cell[2]:.1f}", f"{cell[3]:.6f}"]
        for (vm, kind), cell in sorted(agg.items())
    ]
