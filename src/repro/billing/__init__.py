"""Tenant-aware performance-based billing (ROADMAP item 3).

Pricing follows the Lučanin et al. performance-based-pricing model
(arXiv:1809.05840, arXiv:1809.05842): tenants pay per allocated
MHz-second — tiered base rates for Eq. 5 reservations, scarcity-scaled
spot rates for Alg. 1 surplus-market cycles — and receive SLA credits
whenever an Eq. 2 guarantee is missed.  Every invoice line is
independently re-derivable from the PR 5 decision ledger by
:mod:`repro.checking.billing_oracle`; see ``docs/billing.md``.
"""

from repro.billing.invoice import (
    CreditLine,
    Invoice,
    InvoiceLine,
    build_invoices,
    invoices_to_json,
    render_invoices,
)
from repro.billing.meter import BillingEngine, UsageMeter, decompose
from repro.billing.pricing import (
    DEFAULT_PRICE_BOOK,
    PriceBook,
    PriceTier,
    mhz_seconds_per_cycle,
    sold_fraction,
)

__all__ = [
    "BillingEngine",
    "CreditLine",
    "DEFAULT_PRICE_BOOK",
    "Invoice",
    "InvoiceLine",
    "PriceBook",
    "PriceTier",
    "UsageMeter",
    "build_invoices",
    "decompose",
    "invoices_to_json",
    "mhz_seconds_per_cycle",
    "render_invoices",
    "sold_fraction",
]
