"""Controller configuration.

The evaluation settings (paper §IV-A1): increase trigger 95 %, increase
factor 100 %, decrease trigger 50 %, decrease factor 5 %, period 1 s.

The paper spells factors two ways — Fig. 3 uses a multiplier ("increase
factor is 1.3") while §IV-A1 uses a percent delta ("increase factor ...
100 %").  :class:`ControllerConfig` stores *multipliers*; the
``from_percent`` constructor accepts the percent-delta spelling and the
defaults equal the evaluation configuration (2.0x up, 0.95x down).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Optional

from repro.core.resilience import ResiliencePolicy
from repro.obs.config import ObsConfig


@dataclass(frozen=True)
class ControllerConfig:
    """All knobs of the virtual frequency controller."""

    #: Loop period ``p`` in seconds.
    period_s: float = 1.0
    #: History length ``n`` for the trend computation (iterations).
    history_len: int = 5
    #: Stage 2 — consumption above ``increase_trigger * capping`` arms an increase.
    increase_trigger: float = 0.95
    #: Stage 2 — capping multiplier when increasing (eval: +100 % => 2.0).
    increase_mult: float = 2.0
    #: Stage 2 — consumption below ``decrease_trigger * capping`` arms a decrease.
    decrease_trigger: float = 0.50
    #: Stage 2 — capping multiplier when decreasing (eval: -5 % => 0.95).
    decrease_mult: float = 0.95
    #: Stage 2 — |trend| below this fraction of a core counts as stable.
    trend_epsilon: float = 0.005
    #: Stage 4 — auction window: max cycles one VM buys per round, as a
    #: fraction of one core's period (prevents a rich VM draining the market).
    auction_window_frac: float = 0.01
    #: Stage 3 — optional cap on a VM's credit wallet (cycles); inf = unbounded.
    credit_cap: float = float("inf")
    #: Never cap a vCPU below this fraction of a core (kernel quota floor
    #: and a wake-up ramp for fully idle vCPUs).
    min_cap_frac: float = 0.01
    #: Stage 6 — cgroup enforcement period written to ``cpu.max``.
    enforcement_period_us: int = 100_000
    #: Disable stages 3-6 (configuration "A" runs monitoring only).
    control_enabled: bool = True
    #: Controller hot-path implementation: ``"vectorized"`` runs stages
    #: 2-5 on the structure-of-arrays fast path (:mod:`repro.core.soa`);
    #: ``"bulk"`` additionally drives stages 1 and 6 through the
    #: backend's array interface (:meth:`~repro.core.backend.
    #: HostBackend.sample_all` / ``apply_caps``) with dirty-set
    #: incremental recompute; ``"scalar"`` keeps the per-vCPU
    #: dict/object loops as the bit-identical oracle.  Same reports
    #: all three ways, different speed.
    engine: str = "vectorized"
    #: Use the paper-literal Eq. 3 (with S_n = n(n+1)/2) instead of the
    #: standard least-squares slope; kept for comparison, same sign.
    literal_trend: bool = False
    #: Auction shopping order: "credits" (Algorithm 1) or "frequency"
    #: (the paper's §V cache-aware extension — faster vCPUs first, so
    #: burst cycles concentrate on fewer, faster VMs).
    auction_priority: str = "credits"
    #: Always reserve each vCPU's full guarantee ``C_i`` instead of the
    #: paper's demand-gated Eq. 5 (``min(e, C_i)``).  Trades resource
    #: waste (idle guarantees never reach the market) for zero ramp-up
    #: SLA misses on bursty workloads — the trade-off the paper's design
    #: implicitly declined; quantified in bench_operator_study.py.
    reserve_guarantee: bool = False
    #: Degraded-mode defenses (retry, stale tolerance, guarantee
    #: fallback); ``None`` keeps the seed fail-fast behaviour.
    resilience: Optional[ResiliencePolicy] = None
    #: JSON fault plan to inject at the backend seam (``--fault-plan``);
    #: consumed by the scenario builder, not by the controller itself.
    fault_plan_path: Optional[str] = None
    #: Run the paper-equation invariant oracles (:mod:`repro.checking`)
    #: inline after every tick and raise on any violation.  Off by
    #: default: the oracles re-walk every sample in pure Python, which
    #: is fine for tests and fuzzing but not for the perf benchmarks.
    check_invariants: bool = False
    #: Observability: span tracing, decision ledger and flight recorder
    #: (:mod:`repro.obs`).  ``None`` attaches nothing — the tick path
    #: then pays exactly one ``is None`` check and the report stream is
    #: bit-identical either way (the hub works post hoc from reports).
    observability: Optional[ObsConfig] = None
    #: Where to persist periodic state snapshots (``--snapshot-path``).
    #: A fresh controller auto-restores from this file when it exists.
    snapshot_path: Optional[str] = None
    #: Snapshot cadence in controller ticks (used with snapshot_path).
    snapshot_every_ticks: int = 10

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if self.history_len < 2:
            raise ValueError("history_len must be >= 2 to define a trend")
        if not 0 < self.increase_trigger <= 1:
            raise ValueError("increase_trigger must be in (0, 1]")
        if self.increase_mult <= 1:
            raise ValueError("increase_mult must be > 1")
        if not 0 <= self.decrease_trigger < 1:
            raise ValueError("decrease_trigger must be in [0, 1)")
        if not 0 < self.decrease_mult < 1:
            raise ValueError("decrease_mult must be in (0, 1)")
        if self.decrease_trigger >= self.increase_trigger:
            raise ValueError("decrease_trigger must be below increase_trigger")
        if self.trend_epsilon < 0:
            raise ValueError("trend_epsilon must be >= 0")
        if not 0 < self.auction_window_frac <= 1:
            raise ValueError("auction_window_frac must be in (0, 1]")
        if self.credit_cap < 0:
            raise ValueError("credit_cap must be >= 0")
        if not 0 < self.min_cap_frac <= 1:
            raise ValueError("min_cap_frac must be in (0, 1]")
        if self.enforcement_period_us <= 0:
            raise ValueError("enforcement_period_us must be positive")
        if self.engine not in ("scalar", "vectorized", "bulk"):
            raise ValueError(
                f"engine must be 'scalar', 'vectorized' or 'bulk', "
                f"got {self.engine!r}"
            )
        if self.auction_priority not in ("credits", "frequency"):
            raise ValueError(
                f"auction_priority must be 'credits' or 'frequency', "
                f"got {self.auction_priority!r}"
            )
        if self.snapshot_every_ticks < 1:
            raise ValueError("snapshot_every_ticks must be >= 1")

    @classmethod
    def from_percent(
        cls,
        *,
        increase_trigger_pct: float = 95.0,
        increase_factor_pct: float = 100.0,
        decrease_trigger_pct: float = 50.0,
        decrease_factor_pct: float = 5.0,
        **kwargs,
    ) -> "ControllerConfig":
        """Build from the paper's percent spelling (§IV-A1 defaults)."""
        return cls(
            increase_trigger=increase_trigger_pct / 100.0,
            increase_mult=1.0 + increase_factor_pct / 100.0,
            decrease_trigger=decrease_trigger_pct / 100.0,
            decrease_mult=1.0 - decrease_factor_pct / 100.0,
            **kwargs,
        )

    @classmethod
    def paper_evaluation(cls, **overrides) -> "ControllerConfig":
        """The exact configuration used in the paper's evaluation."""
        return cls.from_percent(**overrides)

    def with_overrides(self, **overrides) -> "ControllerConfig":
        """A validated copy with the given knobs replaced.

        The canonical way to derive a configuration from flags or an
        API request: the original is never mutated (the dataclass is
        frozen anyway) and the copy passes through ``__post_init__``
        validation, so an inconsistent override set fails loudly.

        >>> cfg = ControllerConfig.paper_evaluation()
        >>> cfg.with_overrides(period_s=2.0).period_s
        2.0
        """
        known = {f.name for f in fields(self)}
        unknown = set(overrides) - known
        if unknown:
            raise TypeError(
                f"unknown config field(s): {', '.join(sorted(unknown))}"
            )
        return replace(self, **overrides)

    def monitoring_only(self) -> "ControllerConfig":
        """Configuration A: same settings, capping disabled."""
        return self.with_overrides(control_enabled=False)
