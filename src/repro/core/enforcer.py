"""Stage 6 — applying vCPU capping (paper §III-B6).

Translates a cycle allocation (µs of CPU per controller period ``p``)
into a cgroup bandwidth quota and writes it:

* v2 — ``echo "<quota> <period>" > cpu.max``
* v1 — ``echo <quota> > cpu.cfs_quota_us`` (+ period file)

The cgroup enforcement period (default 100 ms) is shorter than the
controller period, so the quota is the allocation scaled by
``enforcement_period / p``.  The kernel rejects quotas below 1 ms; the
enforcer floors writes accordingly.

The actual writes go through a :class:`~repro.core.backend.HostBackend`,
which coalesces them: a quota already in force is not rewritten, so a
converged controller issues zero write syscalls per tick.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.cgroups.fs import CgroupFS
from repro.core.backend import HostBackend
from repro.core.config import ControllerConfig
from repro.core.units import period_us

#: Kernel minimum cpu.max quota, microseconds.
MIN_QUOTA_US = 1_000


class Enforcer:
    """Writes cycle allocations as cgroup quotas through the backend."""

    def __init__(self, fs, config: ControllerConfig) -> None:
        if isinstance(fs, HostBackend):
            self.backend = fs
        else:
            self.backend = HostBackend(fs)
        self.config = config
        self._last_written: Dict[str, int] = {}

    @property
    def fs(self) -> CgroupFS:
        return self.backend.fs

    def apply(self, allocations: Mapping[str, float]) -> Dict[str, int]:
        """Write every vCPU's allocation; returns quotas in force (µs).

        A vCPU cgroup may vanish between stages of the same iteration
        (VM teardown races the loop on a real host); such paths are
        skipped silently, like a production controller must.  Writes
        are batched through :meth:`HostBackend.write_caps`, which skips
        values already in place.
        """
        quotas: Dict[str, int] = {}
        for path, cycles in allocations.items():
            if cycles < 0:
                raise ValueError(f"negative allocation for {path}: {cycles}")
            quotas[path] = self.quota_us(cycles)
        written = self.backend.write_caps(
            quotas, self.config.enforcement_period_us
        )
        for path in quotas:
            if path in written:
                self._last_written[path] = written[path]
            else:
                self._last_written.pop(path, None)
        return written

    def apply_one(self, vcpu_path: str, cycles: float) -> int:
        """Cap one vCPU at ``cycles`` per controller period."""
        if cycles < 0:
            raise ValueError(f"negative allocation for {vcpu_path}: {cycles}")
        quota = self.quota_us(cycles)
        self.backend.write_cap_one(
            vcpu_path, quota, self.config.enforcement_period_us
        )
        self._last_written[vcpu_path] = quota
        return quota

    def uncap(self, vcpu_path: str) -> None:
        """Remove the bandwidth limit (configuration A / teardown)."""
        self.backend.uncap(vcpu_path, self.config.enforcement_period_us)
        self._last_written.pop(vcpu_path, None)

    def quota_us(self, cycles: float) -> int:
        """Scale a per-period cycle count to the enforcement period."""
        p_us = period_us(self.config.period_s)
        scaled = cycles * self.config.enforcement_period_us / p_us
        return max(MIN_QUOTA_US, int(round(scaled)))

    def cycles_written(self, vcpu_path: str) -> float:
        """Invert :meth:`quota_us` for the last write (controller state)."""
        quota = self._last_written.get(vcpu_path)
        if quota is None:
            return float("nan")
        p_us = period_us(self.config.period_s)
        return quota * p_us / self.config.enforcement_period_us
