"""Structure-of-arrays fast path for the controller hot loop.

The scalar controller walks Python dicts and objects once per vCPU per
stage; on a dense host (hundreds of vCPUs) that interpreter overhead
dominates the per-tick cost the paper insists must stay negligible
(§III-B2).  :class:`VcpuTable` assigns every registered vCPU a stable
integer *slot* and keeps the controller's per-vCPU state in NumPy
arrays — consumption-history ring buffers, current caps, cached Eq. 2
guarantees, degraded flags — so stages 2, 3 and 5 become a handful of
vectorised array operations regardless of population size.

Bit-identity with the scalar oracle
-----------------------------------
The vectorised engine (``ControllerConfig.engine = "vectorized"``) must
produce *bit-identical* reports to the scalar one (``"scalar"``), which
is kept as the oracle.  Floating-point addition is not associative, so
identical results require identical operation order, which this module
guarantees by construction:

* every per-tick array is gathered in **sample order** (the order the
  scalar code iterates its dicts in), so elementwise operations see the
  exact operands the scalar loops see;
* reductions across the *population* that the scalar code performs
  sequentially (``sum()`` over dict values, per-VM credit sums) use
  :func:`seqsum` (``np.add.accumulate``) or ``np.bincount`` — both add
  left-to-right exactly like the Python loops, and adding the ``0.0``
  placeholders of masked-out elements is exact;
* reductions across the *history window* (Eq. 3 slope) loop over the
  ≤ ``history_len`` window positions accumulating whole population
  vectors, so each element's additions happen in the same order as the
  scalar ``trend_slope`` loop;
* the data-independent Eq. 3 centring weights and denominator are
  precomputed per history length with the scalar arithmetic itself.

The equivalence is enforced by ``tests/core/test_engine_equivalence.py``
(200 random ticks with churn and degraded vCPUs) and by the Fig. 6/7
report-stream comparison in the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import ControllerConfig
from repro.core.estimator import Case, EstimatorDecision
from repro.core.units import period_us

__all__ = ["VcpuTable", "TickView", "seqsum", "decide_batch", "build_decisions"]

#: Integer case codes used inside the vectorised estimator (int8 array).
_WARMUP, _INCREASE, _DECREASE, _STABLE = 0, 1, 2, 3
_CASE_OF_CODE = {
    _WARMUP: Case.WARMUP,
    _INCREASE: Case.INCREASE,
    _DECREASE: Case.DECREASE,
    _STABLE: Case.STABLE,
}

#: (history length, literal flag) -> (centring weights dx, denominator).
_CENTERING: Dict[Tuple[int, bool], Tuple[np.ndarray, float]] = {}


def centering_weights(n: int, literal: bool) -> Tuple[np.ndarray, float]:
    """Eq. 3 centring weights ``dx_k = k - center`` and ``sum(dx_k^2)``.

    Both are data-independent per window length, so they are computed
    once — with the exact scalar arithmetic of
    :func:`repro.core.estimator.trend_slope` so the cached denominator
    is the same float the scalar loop re-derives every call.
    """
    key = (n, literal)
    hit = _CENTERING.get(key)
    if hit is None:
        center = n * (n + 1) / 2.0 if literal else (n + 1) / 2.0
        dx = np.array([float(k) - center for k in range(1, n + 1)])
        denom = 0.0
        for k in range(1, n + 1):
            d = k - center
            denom += d * d
        hit = (dx, denom)
        _CENTERING[key] = hit
    return hit


def seqsum(values: np.ndarray) -> float:
    """Strict left-to-right float sum, bit-identical to Python ``sum()``.

    ``np.sum`` uses pairwise summation, which reassociates additions and
    can differ from the scalar engine's sequential dict-value sums in
    the last ulp; ``np.add.accumulate`` is sequential by definition.
    """
    if values.size == 0:
        return 0.0
    return float(np.add.accumulate(values)[-1])


@dataclass
class TickView:
    """One tick's samples gathered into slot-indexed arrays.

    Arrays are in *sample order* (see the module docstring); ``rows``
    maps each position to its table slot.
    """

    rows: np.ndarray  # intp, table slot per sample
    consumed: np.ndarray  # float64, u_{i,j,t} per sample
    paths: List[str]  # cgroup path per sample
    pos: Dict[str, int]  # cgroup path -> position in the arrays
    vms: List[str]  # owning VM name per sample
    vm_order: List[Tuple[str, int]]  # first-seen VM order, with dense ids


class VcpuTable:
    """Stable integer slots + NumPy columns for per-vCPU controller state.

    Slots are assigned lazily at a vCPU's first sample and survive until
    the path (or its whole VM) is released, so gathered views stay valid
    across ticks; freed slots are recycled.  VM names get dense integer
    ids for ``np.bincount`` segment reductions in the credit stage.
    """

    def __init__(self, history_len: int, capacity: int = 64) -> None:
        if history_len < 2:
            raise ValueError("history_len must be >= 2")
        self.history_len = history_len
        capacity = max(1, capacity)
        # -- per-slot columns ------------------------------------------------
        self.hist = np.zeros((capacity, history_len))  # right-aligned window
        self.hist_n = np.zeros(capacity, dtype=np.int64)  # valid entries
        self.cap = np.zeros(capacity)  # current cap (cycles)
        self.has_cap = np.zeros(capacity, dtype=bool)
        self.guarantee = np.zeros(capacity)  # cached Eq. 2 C_i
        self.vm_ids = np.zeros(capacity, dtype=np.int64)
        self.degraded = np.zeros(capacity, dtype=bool)
        # -- dirty-set decision cache (bulk engine) --------------------------
        #: Length of the uniform tail of observed samples, *including*
        #: the newest one.  ``run_len > history_len`` means the window
        #: did not change when the newest sample shifted in — the one
        #: condition under which last tick's stage-2 decision is
        #: guaranteed to be bit-identical to recomputing it.
        self.run_len = np.zeros(capacity, dtype=np.int64)
        self.decide_valid = np.zeros(capacity, dtype=bool)
        self.last_est = np.zeros(capacity)
        self.last_trend = np.zeros(capacity)
        self.last_case = np.zeros(capacity, dtype=np.int8)
        self.last_decide_cap = np.zeros(capacity)
        #: Quota (µs) this slot's cap scaled to at the last bulk write;
        #: ``-1`` = unknown/failed, always dirty.
        self.last_quota = np.full(capacity, -1, dtype=np.int64)
        # -- slot bookkeeping ------------------------------------------------
        self._slot: Dict[str, int] = {}
        self._path_of: List[Optional[str]] = [None] * capacity
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        # -- VM id space -----------------------------------------------------
        self._vm_id: Dict[str, int] = {}
        self._vm_names: List[str] = []
        self._vm_free: List[int] = []
        self._vm_slots: Dict[str, List[int]] = {}

    # -- capacity ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._slot)

    @property
    def capacity(self) -> int:
        return self.hist.shape[0]

    def _grow(self) -> None:
        old = self.capacity
        new = old * 2
        for name in ("hist", "hist_n", "cap", "has_cap", "guarantee",
                     "vm_ids", "degraded", "run_len", "decide_valid",
                     "last_est", "last_trend", "last_case",
                     "last_decide_cap", "last_quota"):
            arr = getattr(self, name)
            shape = (new,) + arr.shape[1:]
            grown = np.zeros(shape, dtype=arr.dtype)
            grown[:old] = arr
            setattr(self, name, grown)
        self._path_of.extend([None] * (new - old))
        self._free.extend(range(new - 1, old - 1, -1))

    # -- VM ids -----------------------------------------------------------------

    def _vm_id_for(self, vm_name: str) -> int:
        vid = self._vm_id.get(vm_name)
        if vid is None:
            if self._vm_free:
                vid = self._vm_free.pop()
                self._vm_names[vid] = vm_name
            else:
                vid = len(self._vm_names)
                self._vm_names.append(vm_name)
            self._vm_id[vm_name] = vid
            self._vm_slots[vm_name] = []
        return vid

    @property
    def num_vm_ids(self) -> int:
        """Size of the dense VM-id space (``np.bincount`` minlength)."""
        return len(self._vm_names)

    def vm_name_of_id(self, vm_id: int) -> str:
        return self._vm_names[vm_id]

    def vm_name_of_slot(self, slot: int) -> str:
        return self._vm_names[int(self.vm_ids[slot])]

    # -- slot lifecycle ---------------------------------------------------------

    def slot_of(self, path: str) -> Optional[int]:
        return self._slot.get(path)

    def ensure_slot(
        self,
        path: str,
        vm_name: str,
        guarantee: float,
        initial_cap: Optional[float] = None,
    ) -> int:
        """Slot for ``path``, assigning (and seeding) one if new."""
        slot = self._slot.get(path)
        if slot is not None:
            return slot
        if not self._free:
            self._grow()
        slot = self._free.pop()
        self._slot[path] = slot
        self._path_of[slot] = path
        self.hist[slot] = 0.0
        self.hist_n[slot] = 0
        self.guarantee[slot] = guarantee
        self.degraded[slot] = False
        self.run_len[slot] = 0
        self.decide_valid[slot] = False
        self.last_quota[slot] = -1
        if initial_cap is None:
            self.cap[slot] = 0.0
            self.has_cap[slot] = False
        else:
            self.cap[slot] = initial_cap
            self.has_cap[slot] = True
        vid = self._vm_id_for(vm_name)
        self.vm_ids[slot] = vid
        self._vm_slots[vm_name].append(slot)
        return slot

    def release_path(self, path: str) -> None:
        """Free a vCPU's slot (cgroup destroyed / VM unregistered)."""
        slot = self._slot.pop(path, None)
        if slot is None:
            return
        vm_name = self.vm_name_of_slot(slot)
        self._path_of[slot] = None
        self.hist_n[slot] = 0
        self.has_cap[slot] = False
        self.degraded[slot] = False
        self.run_len[slot] = 0
        self.decide_valid[slot] = False
        self.last_quota[slot] = -1
        self._free.append(slot)
        slots = self._vm_slots.get(vm_name)
        if slots is not None:
            slots.remove(slot)

    def release_vm(self, vm_name: str) -> None:
        """Free every slot of a VM and recycle its dense id."""
        for slot in list(self._vm_slots.get(vm_name, ())):
            path = self._path_of[slot]
            if path is not None:
                self.release_path(path)
        vid = self._vm_id.pop(vm_name, None)
        if vid is not None:
            self._vm_slots.pop(vm_name, None)
            self._vm_names[vid] = ""
            self._vm_free.append(vid)

    def clear(self) -> None:
        """Drop everything (controller reset before snapshot restore)."""
        capacity = self.capacity
        self.hist_n[:] = 0
        self.has_cap[:] = False
        self.degraded[:] = False
        self.run_len[:] = 0
        self.decide_valid[:] = False
        self.last_quota[:] = -1
        self._slot.clear()
        self._path_of = [None] * capacity
        self._free = list(range(capacity - 1, -1, -1))
        self._vm_id.clear()
        self._vm_names = []
        self._vm_free = []
        self._vm_slots.clear()

    # -- guarantees (cached Eq. 2) ----------------------------------------------

    def set_vm_guarantee(self, vm_name: str, guarantee: float) -> None:
        """Refresh the cached ``C_i`` of a VM's live slots (set_vfreq)."""
        slots = self._vm_slots.get(vm_name)
        if slots:
            self.guarantee[np.asarray(slots, dtype=np.intp)] = guarantee

    # -- histories --------------------------------------------------------------

    def observe(self, rows: np.ndarray, consumed: np.ndarray) -> None:
        """Append one consumption per row (stage 2 history update)."""
        if rows.size == 0:
            return
        # Uniform-tail tracking must look at the newest sample *before*
        # the shift: extend the run when the incoming value repeats it.
        same = (self.hist_n[rows] > 0) & (self.hist[rows, -1] == consumed)
        self.run_len[rows] = np.where(same, self.run_len[rows] + 1, 1)
        self.hist[rows, :-1] = self.hist[rows, 1:]
        self.hist[rows, -1] = consumed
        self.hist_n[rows] = np.minimum(self.hist_n[rows] + 1, self.history_len)

    def history_of(self, path: str) -> List[float]:
        """Chronological consumption window of one vCPU (oldest first)."""
        slot = self._slot.get(path)
        if slot is None:
            return []
        n = int(self.hist_n[slot])
        return self.hist[slot, self.history_len - n:].tolist()

    def histories(self) -> Dict[str, List[float]]:
        """All non-empty windows, keyed by path (snapshot schema)."""
        out: Dict[str, List[float]] = {}
        for path, slot in self._slot.items():
            n = int(self.hist_n[slot])
            if n:
                out[path] = self.hist[slot, self.history_len - n:].tolist()
        return out

    def load_history(self, path: str, values: Sequence[float]) -> None:
        """Replace one vCPU's window (snapshot restore); keeps the tail."""
        slot = self._slot[path]
        vals = [float(v) for v in values][-self.history_len:]
        n = len(vals)
        self.hist[slot] = 0.0
        if n:
            self.hist[slot, self.history_len - n:] = vals
        self.hist_n[slot] = n
        # The window was replaced wholesale: the uniform-tail counter no
        # longer describes it, so the decision cache must not serve.
        self.run_len[slot] = 0
        self.decide_valid[slot] = False

    # -- caps and degraded flags ------------------------------------------------

    def set_caps(self, rows: np.ndarray, caps: np.ndarray) -> None:
        """Scatter this tick's enforced caps back into the slot columns."""
        self.cap[rows] = caps
        self.has_cap[rows] = True

    def set_cap_path(self, path: str, cap: float) -> None:
        slot = self._slot.get(path)
        if slot is not None:
            self.cap[slot] = cap
            self.has_cap[slot] = True

    def set_degraded(self, path: str, flag: bool) -> None:
        slot = self._slot.get(path)
        if slot is not None:
            self.degraded[slot] = flag

    def num_degraded(self) -> int:
        return int(np.count_nonzero(self.degraded))

    # -- the per-tick gather ----------------------------------------------------

    def ingest(
        self,
        samples: Iterable,
        guarantee_of: Callable[[str], float],
        initial_caps: Optional[Dict[str, float]] = None,
    ) -> TickView:
        """Gather one tick's samples into sample-order arrays.

        New paths get slots on the fly, seeded with the VM's cached
        guarantee and (if present) the cap restored from a snapshot.
        """
        samples = list(samples)
        n = len(samples)
        rows = np.empty(n, dtype=np.intp)
        consumed = np.empty(n)
        paths: List[str] = []
        pos: Dict[str, int] = {}
        vms: List[str] = []
        vm_order: List[Tuple[str, int]] = []
        seen_vms: Dict[str, int] = {}
        slot_map = self._slot
        for i, s in enumerate(samples):
            path = s.cgroup_path
            vm_name = s.vm_name
            slot = slot_map.get(path)
            if slot is None:
                seed_cap = None
                if initial_caps is not None:
                    seed_cap = initial_caps.get(path)
                slot = self.ensure_slot(
                    path, vm_name, guarantee_of(vm_name), seed_cap
                )
            rows[i] = slot
            consumed[i] = s.consumed_cycles
            paths.append(path)
            pos[path] = i
            vms.append(vm_name)
            if vm_name not in seen_vms:
                seen_vms[vm_name] = 1
                vm_order.append((vm_name, self._vm_id[vm_name]))
        return TickView(
            rows=rows, consumed=consumed, paths=paths, pos=pos,
            vms=vms, vm_order=vm_order,
        )


# -- vectorised stage 2 ----------------------------------------------------------


def _decide_core(
    table: VcpuTable,
    rows: np.ndarray,
    u: np.ndarray,
    n_arr: np.ndarray,
    cap: np.ndarray,
    cfg: ControllerConfig,
    p_us: float,
    floor: float,
    eps: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The stage-2 decision arithmetic over one set of rows.

    Pure per-element function of (history window, cap, config), so
    computing it over any subset of rows yields the same values as
    over the full population — the property the dirty-set cache in
    :func:`decide_batch` relies on.
    """
    n = rows.size
    est = np.empty(n)
    trend = np.zeros(n)
    case = np.full(n, _WARMUP, dtype=np.int8)

    # Warmup (one observation): estimate = clip(max(u, cap)).
    m1 = n_arr <= 1
    if m1.any():
        est[m1] = np.maximum(u[m1], cap[m1])

    # Eq. 3 slopes, grouped by window length so each group's window is a
    # dense (group, n) matrix.  The accumulations loop over the ≤
    # history_len columns, adding population vectors in the scalar
    # loop's order (num and mean both start from 0.0 exactly).
    L = table.history_len
    for win in range(2, L + 1):
        mask = n_arr == win
        if not mask.any():
            continue
        idx = rows[mask]
        window = table.hist[idx][:, L - win:]
        dx, denom = centering_weights(win, cfg.literal_trend)
        acc = np.zeros(idx.size)
        for k in range(win):
            acc += window[:, k]
        mean = acc / win
        num = np.zeros(idx.size)
        for k in range(win):
            num += dx[k] * (window[:, k] - mean)
        trend[mask] = num / denom if denom != 0.0 else 0.0

    m2 = ~m1
    if m2.any():
        u2 = u[m2]
        cap2 = cap[m2]
        slope2 = trend[m2]
        e2 = np.empty(u2.size)
        c2 = np.empty(u2.size, dtype=np.int8)
        inc = (slope2 > eps) & (u2 >= cfg.increase_trigger * cap2)
        dec = ~inc & (slope2 < -eps) & (u2 <= cfg.decrease_trigger * cap2)
        rest = ~inc & ~dec
        # Stable case's pegged-at-cap escape (see estimator.decide).
        pegged = rest & (u2 >= 0.99 * cap2) & (slope2 >= -eps)
        stable = rest & ~pegged
        grow = inc | pegged
        e2[grow] = cap2[grow] * cfg.increase_mult
        e2[dec] = np.maximum(cap2[dec] * cfg.decrease_mult, u2[dec])
        e2[stable] = u2[stable] / cfg.increase_trigger
        c2[grow] = _INCREASE
        c2[dec] = _DECREASE
        c2[stable] = _STABLE
        est[m2] = e2
        case[m2] = c2

    np.maximum(est, floor, out=est)
    np.minimum(est, p_us, out=est)
    return est, trend, case


def decide_batch(
    table: VcpuTable,
    view: TickView,
    config: ControllerConfig,
    use_cache: bool = False,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stage-2 decisions for every sampled vCPU at once.

    Returns ``(estimates, trends, case_codes)`` in sample order,
    bit-identical to calling
    :meth:`repro.core.estimator.TrendEstimator.decide` per path.
    Histories must already include this tick's observation
    (:meth:`VcpuTable.observe` first), mirroring the scalar order.

    With ``use_cache=True`` (the bulk engine's dirty-set recompute),
    rows whose decision inputs provably did not change since their
    last decision — the consumption window shifted in a repeat of
    itself (``run_len > history_len``) and the cap equals the exact
    value the cached decision was computed against — are served from
    the per-slot cache instead of recomputed.  The decision is a pure
    per-element function of (window, cap, config), so cached and
    recomputed values are bit-identical by construction (and proved
    against the scalar oracle by the cross-engine harness on fuzzed
    traces).
    """
    cfg = config
    p_us = period_us(cfg.period_s)
    floor = cfg.min_cap_frac * p_us
    eps = cfg.trend_epsilon * p_us
    rows = view.rows
    u = view.consumed
    n = rows.size

    n_arr = table.hist_n[rows]
    cap_raw = np.where(table.has_cap[rows], table.cap[rows], p_us)
    cap = np.maximum(cap_raw, floor)

    if not use_cache:
        return _decide_core(table, rows, u, n_arr, cap, cfg, p_us, floor, eps)

    clean = (
        table.decide_valid[rows]
        & (table.run_len[rows] > table.history_len)
        & (table.last_decide_cap[rows] == cap)
    )
    est = np.empty(n)
    trend = np.empty(n)
    case = np.empty(n, dtype=np.int8)
    if clean.any():
        r = rows[clean]
        est[clean] = table.last_est[r]
        trend[clean] = table.last_trend[r]
        case[clean] = table.last_case[r]
    dirty = ~clean
    if dirty.any():
        e, tr, ca = _decide_core(
            table, rows[dirty], u[dirty], n_arr[dirty], cap[dirty],
            cfg, p_us, floor, eps,
        )
        est[dirty] = e
        trend[dirty] = tr
        case[dirty] = ca
    table.last_est[rows] = est
    table.last_trend[rows] = trend
    table.last_case[rows] = case
    table.last_decide_cap[rows] = cap
    table.decide_valid[rows] = True
    return est, trend, case


def build_decisions(
    paths: List[str],
    estimates: np.ndarray,
    trends: np.ndarray,
    cases: np.ndarray,
) -> Dict[str, EstimatorDecision]:
    """Materialise the per-path decision dict (report detail only).

    Python floats are used so reports and snapshots serialise exactly
    like the scalar engine's.
    """
    est = estimates.tolist()
    tr = trends.tolist()
    return {
        path: EstimatorDecision(
            estimate_cycles=est[i], trend=tr[i], case=_CASE_OF_CODE[int(cases[i])]
        )
        for i, path in enumerate(paths)
    }


def gather_free_shares(
    paths: List[str], needy: np.ndarray, shares: np.ndarray
) -> Dict[str, float]:
    """Materialise stage-5 shares as the scalar engine's leftover dict.

    ``needy`` indexes ``paths`` in sample order (``np.flatnonzero`` is
    ascending), matching the scalar ``distribute_leftovers`` insertion
    order; zero shares are dropped exactly like its ``share > 0``
    filter, so both engines report the identical mapping.
    """
    return {
        paths[i]: share
        for i, share in zip(needy.tolist(), shares.tolist())
        if share > 0
    }
