"""Degraded-mode resilience policies for the controller loop.

The paper's controller sits in a 1 s feedback loop over live kernel
interfaces that fail routinely in production: vCPU threads vanish
mid-scan, cgroup writes return EIO/EBUSY, counters freeze, and the
controller process itself restarts.  Makridis et al. ("Robust Dynamic
CPU Resource Provisioning in Virtualized Servers") argue an allocation
controller must stay stable under noisy and missing measurements; this
module is the knob set that buys that stability:

* **bounded retry-with-backoff** for ``cpu.max`` writes that fail with
  a transient error (EIO/EBUSY) — the backend reports per-path write
  failures instead of aborting the batch, and the controller retries
  the failed subset up to ``write_retries`` times;
* **stale-sample tolerance** in the monitor — a vCPU missing from one
  scan is carried forward (its last sample is repeated) for up to
  ``stale_sample_max_age`` ticks instead of silently disappearing from
  stages 2-6;
* **degraded mode** — a vCPU unobservable for ``degraded_after_ticks``
  consecutive ticks stops being estimated and falls back to a safe cap:
  its Eq. 2 guarantee (``degraded_action="guarantee"``) or the last cap
  in force (``"hold"``).  Recovery is automatic the moment the vCPU is
  observed again, and the recovery latency is recorded.

The policy is pure configuration (a frozen dataclass, routable through
:meth:`~repro.core.config.ControllerConfig.with_overrides`); the
mutable tracking lives in :class:`ResilienceStats` on the controller.
``None``/disabled keeps the seed behaviour bit-identical: faults raise
out of ``tick()`` or are silently swallowed, exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict

from repro.obs.logging import get_logger

log = get_logger("repro.resilience")


@dataclass(frozen=True)
class ResiliencePolicy:
    """All knobs of the controller's degraded-mode defenses."""

    #: Retries of a failed ``cpu.max`` write batch (0 = no retry).
    write_retries: int = 2
    #: Simulated backoff between write retries, seconds per attempt.
    write_backoff_s: float = 0.0
    #: Carry a missing vCPU's last sample forward for up to this many
    #: ticks before it counts as unobservable (0 = no carry-forward).
    stale_sample_max_age: int = 2
    #: Consecutive unobserved ticks after which a vCPU enters degraded
    #: mode and falls back to a safe cap.
    degraded_after_ticks: int = 3
    #: Degraded fallback: ``"guarantee"`` caps at the Eq. 2 guarantee
    #: ``C_i``; ``"hold"`` keeps the last cap in force.
    degraded_action: str = "guarantee"

    def __post_init__(self) -> None:
        if self.write_retries < 0:
            raise ValueError("write_retries must be >= 0")
        if self.write_backoff_s < 0:
            raise ValueError("write_backoff_s must be >= 0")
        if self.stale_sample_max_age < 0:
            raise ValueError("stale_sample_max_age must be >= 0")
        if self.degraded_after_ticks < 1:
            raise ValueError("degraded_after_ticks must be >= 1")
        if self.degraded_action not in ("guarantee", "hold"):
            raise ValueError(
                f"degraded_action must be 'guarantee' or 'hold', "
                f"got {self.degraded_action!r}"
            )


@dataclass
class ResilienceStats:
    """Cumulative counters of faults survived by one controller.

    Every event class is a counter so the Prometheus export can graph
    the fault pressure a node is under; ``degraded_vcpu_ticks`` is the
    guarantee-violation exposure the fault-resilience bench bounds.
    """

    #: Whole monitoring passes that returned nothing due to an error.
    monitor_failures: int = 0
    #: Samples served from the carry-forward cache (stale tolerance).
    stale_samples_used: int = 0
    #: Individual ``cpu.max`` write attempts re-issued after a failure.
    write_retries: int = 0
    #: Writes still failing after the retry budget was exhausted.
    write_failures: int = 0
    #: vCPUs that crossed into degraded mode.
    degraded_transitions: int = 0
    #: Degraded vCPUs re-observed and returned to normal control.
    recoveries: int = 0
    #: Total vCPU-ticks spent in degraded mode.
    degraded_vcpu_ticks: int = 0
    #: Ticks from degradation to recovery for the latest recovery.
    last_recovery_ticks: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class DegradedVcpu:
    """Tracking record for one vCPU currently in degraded mode."""

    cgroup_path: str
    vm_name: str
    since_tick: int
    fallback_cycles: float = 0.0


def fallback_caps(
    policy: ResiliencePolicy,
    degraded: Dict[str, DegradedVcpu],
    registered_vms,
    current_caps: Dict[str, float],
    guarantee_of,
    p_us: float,
) -> Dict[str, float]:
    """Safe caps for every degraded vCPU (stage 6 of both engines).

    An unobservable vCPU cannot be estimated, so it is held at a safe
    cap — its Eq. 2 guarantee ``C_i`` (``degraded_action="guarantee"``)
    or the last cap in force (``"hold"``) — instead of silently dropping
    out of enforcement.  Updates each record's ``fallback_cycles`` and
    returns the path -> cycles overrides to merge into the allocation.
    """
    out: Dict[str, float] = {}
    for path, rec in degraded.items():
        if rec.vm_name not in registered_vms:
            continue
        if policy.degraded_action == "hold" and path in current_caps:
            fallback = current_caps[path]
        else:
            fallback = guarantee_of(rec.vm_name)
        rec.fallback_cycles = min(fallback, p_us)
        out[path] = rec.fallback_cycles
        log.debug(
            "degraded fallback cap %.0f cycles (%s)",
            rec.fallback_cycles, policy.degraded_action,
            extra={"path": path, "vm": rec.vm_name},
        )
    return out
