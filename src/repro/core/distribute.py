"""Stage 5 — free distribution of still-unallocated cycles (paper §III-B5).

The auction stops when no buyer can pay; whatever is left in the market
would be wasted, so it is given away to vCPUs whose allocation is still
below their estimate, proportionally to each one's share of the total
residual demand.
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from repro.sched.fairshare import proportional_share


def distribute_leftovers(
    market_left: float,
    residual_demands: Mapping[str, float],
) -> Dict[str, float]:
    """Give away ``market_left`` cycles proportionally to residual demand.

    Returns extra cycles per vCPU path; never exceeds any vCPU's residual
    demand and never hands out more than ``market_left`` in total.
    """
    if market_left < 0:
        raise ValueError("market_left must be >= 0")
    paths = [p for p, need in residual_demands.items() if need > 1e-9]
    if not paths or market_left <= 0:
        return {}
    needs = np.asarray([residual_demands[p] for p in paths], dtype=np.float64)
    shares = proportional_share(market_left, needs)
    return {path: float(share) for path, share in zip(paths, shares) if share > 0}
