"""Cycle/frequency conversions (paper Eqs. 1 and 2).

A *cycle* is one microsecond of CPU time inside one controller period
``p`` (paper §III-A).  With ``p`` in seconds:

* ``C_m^MAX = p_us * k_m^CPU``                      (Eq. 1)
* ``C_i    = p_us * F_v / F_n^MAX``  per vCPU        (Eq. 2)

so a vCPU holding exactly ``C_i`` cycles of CPU time per period runs at
virtual frequency ``F_v`` — the strict cycles<->frequency relation the
evaluation verifies.
"""

from __future__ import annotations

US_PER_S = 1_000_000


def period_us(p_seconds: float) -> float:
    """Controller period expressed in microseconds (= cycles per core)."""
    if p_seconds <= 0:
        raise ValueError(f"period must be positive, got {p_seconds}")
    return p_seconds * US_PER_S


def cycles_per_period(p_seconds: float, num_cpus: int) -> float:
    """Eq. 1: the node's total cycle budget ``C_m^MAX`` per period."""
    if num_cpus <= 0:
        raise ValueError(f"num_cpus must be positive, got {num_cpus}")
    return period_us(p_seconds) * num_cpus


def guaranteed_cycles(p_seconds: float, vfreq_mhz: float, fmax_mhz: float) -> float:
    """Eq. 2: cycles per period guaranteeing ``vfreq_mhz`` on this host.

    Requires ``vfreq <= fmax`` (a guarantee above the host's peak is
    unsatisfiable; admission control rejects such placements).
    """
    if vfreq_mhz <= 0:
        raise ValueError(f"vfreq must be positive, got {vfreq_mhz}")
    if fmax_mhz <= 0:
        raise ValueError(f"fmax must be positive, got {fmax_mhz}")
    if vfreq_mhz > fmax_mhz:
        raise ValueError(
            f"virtual frequency {vfreq_mhz} MHz exceeds host F_MAX {fmax_mhz} MHz"
        )
    return period_us(p_seconds) * vfreq_mhz / fmax_mhz


def cycles_to_mhz(cycles: float, p_seconds: float, fmax_mhz: float) -> float:
    """Invert Eq. 2: the virtual frequency a cycle allocation corresponds to."""
    if cycles < 0:
        raise ValueError(f"cycles must be >= 0, got {cycles}")
    return cycles / period_us(p_seconds) * fmax_mhz


def mhz_to_cycles(vfreq_mhz: float, p_seconds: float, fmax_mhz: float) -> float:
    """Alias of :func:`guaranteed_cycles` with argument order matching use sites."""
    return guaranteed_cycles(p_seconds, vfreq_mhz, fmax_mhz)
