"""Stage 1 — monitoring vCPU resource consumption (paper §III-B1).

Walks the KVM machine slice, and for every vCPU cgroup:

* reads cumulative CPU usage (``cpu.stat``'s ``usage_usec`` on v2,
  ``cpuacct.usage`` nanoseconds on v1) and diffs against the previous
  iteration to obtain the consumption ``u_{i,j,t}`` in cycles;
* reads the single KVM tid from ``cgroup.threads``/``tasks``, looks up
  the core it last ran on in ``/proc/<tid>/stat`` (once per iteration —
  the paper's deliberate low-overhead choice), reads that core's
  ``scaling_cur_freq``, and estimates the vCPU's *virtual frequency* as
  the share of a core consumed times the core's frequency.

Everything here is file reads — the code would run against a real
host's /sys, /proc and cgroupfs given the same read interfaces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cgroups.cpu import parse_cpu_stat
from repro.cgroups.fs import CgroupFS, CgroupVersion
from repro.cgroups.procfs import ProcFS, parse_stat_line
from repro.cgroups.sysfs import CpuFreqSysFS
from repro.core.units import period_us


@dataclass(frozen=True)
class VCpuSample:
    """Stage-1 output for one vCPU at one controller iteration."""

    vm_name: str
    vcpu_index: int
    cgroup_path: str
    tid: int
    consumed_cycles: float  # u_{i,j,t}: µs of CPU in the last period
    core: int
    core_freq_mhz: float
    vfreq_mhz: float  # estimated virtual frequency


class Monitor:
    """Reads kernel surfaces and produces per-vCPU samples."""

    def __init__(
        self,
        fs: CgroupFS,
        procfs: ProcFS,
        sysfs: CpuFreqSysFS,
        *,
        machine_slice: str = "/machine.slice",
        period_s: float = 1.0,
    ) -> None:
        self.fs = fs
        self.procfs = procfs
        self.sysfs = sysfs
        self.machine_slice = machine_slice
        self.period_s = period_s
        self._prev_usage: Dict[str, float] = {}

    def sample(self) -> List[VCpuSample]:
        """One monitoring pass over all hosted vCPUs.

        VM teardown races with the walk on a real host (a cgroup listed by
        readdir may be gone by the time its files are opened, and a tid
        read from ``cgroup.threads`` may have exited before its
        ``/proc/<tid>/stat`` is read); such vCPUs are silently skipped,
        exactly as a production monitor must.
        """
        samples: List[VCpuSample] = []
        if not self.fs.exists(self.machine_slice):
            return samples
        for vm_name in self.fs.listdir(self.machine_slice):
            vm_path = f"{self.machine_slice}/{vm_name}"
            try:
                children = self.fs.listdir(vm_path)
            except FileNotFoundError:
                continue  # VM destroyed mid-walk
            for child in children:
                if not child.startswith("vcpu"):
                    continue
                try:
                    sample = self._sample_vcpu(vm_name, vm_path, child)
                except (FileNotFoundError, ProcessLookupError):
                    self.forget(f"{vm_path}/{child}")
                    continue
                if sample is not None:
                    samples.append(sample)
        return samples

    def _sample_vcpu(
        self, vm_name: str, vm_path: str, child: str
    ) -> Optional[VCpuSample]:
        vcpu_path = f"{vm_path}/{child}"
        usage = self._read_usage_usec(vcpu_path)
        prev = self._prev_usage.get(vcpu_path, usage)
        self._prev_usage[vcpu_path] = usage
        consumed = max(0.0, usage - prev)

        tid = self._read_tid(vcpu_path)
        if tid is None:
            return None
        core = self._read_last_core(tid)
        core_freq_mhz = self.sysfs.scaling_cur_freq(core) / 1000.0
        share = min(consumed / period_us(self.period_s), 1.0)
        return VCpuSample(
            vm_name=vm_name,
            vcpu_index=int(child[len("vcpu"):]),
            cgroup_path=vcpu_path,
            tid=tid,
            consumed_cycles=consumed,
            core=core,
            core_freq_mhz=core_freq_mhz,
            vfreq_mhz=share * core_freq_mhz,
        )

    def forget(self, vcpu_path: str) -> None:
        """Drop state for a destroyed vCPU cgroup."""
        self._prev_usage.pop(vcpu_path, None)

    # -- kernel-surface readers ---------------------------------------------------

    def _read_usage_usec(self, vcpu_path: str) -> float:
        if self.fs.version is CgroupVersion.V2:
            stat = parse_cpu_stat(self.fs.read(f"{vcpu_path}/cpu.stat"))
            return float(stat["usage_usec"])
        nanos = int(self.fs.read(f"{vcpu_path}/cpuacct.usage").strip())
        return nanos / 1000.0

    def _read_tid(self, vcpu_path: str) -> Optional[int]:
        fname = "cgroup.threads" if self.fs.version is CgroupVersion.V2 else "tasks"
        content = self.fs.read(f"{vcpu_path}/{fname}").split()
        if not content:
            return None
        # KVM vCPU cgroups hold exactly one thread (paper §III-B1).
        return int(content[0])

    def _read_last_core(self, tid: int) -> int:
        stat = parse_stat_line(self.procfs.read_stat(tid))
        return stat.processor
