"""Stage 1 — monitoring vCPU resource consumption (paper §III-B1).

For every vCPU cgroup under the KVM machine slice:

* reads cumulative CPU usage (``cpu.stat``'s ``usage_usec`` on v2,
  ``cpuacct.usage`` nanoseconds on v1) and diffs against the previous
  iteration to obtain the consumption ``u_{i,j,t}`` in cycles;
* looks up the vCPU's single KVM tid, the core it last ran on in
  ``/proc/<tid>/stat`` (once per iteration — the paper's deliberate
  low-overhead choice), reads that core's ``scaling_cur_freq``, and
  estimates the vCPU's *virtual frequency* as the share of a core
  consumed times the core's frequency.

All kernel-surface traffic goes through a
:class:`~repro.core.backend.HostBackend`, which batches it: the
tid→cgroup map is cached across iterations (invalidated on VM churn)
and per-core frequency reads are deduplicated within a pass — see the
backend module for the §IV-A2 motivation.  ``Monitor`` remains as the
stage-1 facade; constructing it from raw ``CgroupFS``/``ProcFS``/
``CpuFreqSysFS`` handles wraps them in a private backend.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cgroups.fs import CgroupFS
from repro.cgroups.procfs import ProcFS
from repro.cgroups.sysfs import CpuFreqSysFS
from repro.core.backend import DEFAULT_MACHINE_SLICE, HostBackend, VCpuSample

__all__ = ["Monitor", "VCpuSample"]


class Monitor:
    """Reads kernel surfaces through a backend, produces per-vCPU samples."""

    def __init__(
        self,
        fs,
        procfs: Optional[ProcFS] = None,
        sysfs: Optional[CpuFreqSysFS] = None,
        *,
        machine_slice: str = DEFAULT_MACHINE_SLICE,
        period_s: float = 1.0,
        stale_max_age: int = 0,
    ) -> None:
        if isinstance(fs, HostBackend):
            self.backend = fs
        else:
            self.backend = HostBackend(
                fs, procfs, sysfs, machine_slice=machine_slice
            )
        self.period_s = period_s
        #: Ticks a known vCPU may miss a scan and still be served from
        #: the carry-forward cache (0 = off, the seed behaviour).
        self.stale_max_age = stale_max_age
        self._last_seen: Dict[str, VCpuSample] = {}
        self._missing_age: Dict[str, int] = {}
        #: Samples served stale in the latest pass / cumulatively.
        self.last_carried = 0
        self.stale_carried = 0

    # Legacy attribute views (the raw handles now live on the backend).

    @property
    def fs(self) -> CgroupFS:
        return self.backend.fs

    @property
    def procfs(self) -> Optional[ProcFS]:
        return self.backend.procfs

    @property
    def sysfs(self) -> Optional[CpuFreqSysFS]:
        return self.backend.sysfs

    @property
    def machine_slice(self) -> str:
        return self.backend.machine_slice

    @property
    def _prev_usage(self) -> Dict[str, float]:
        # Live view for snapshot/restore.
        return self.backend._prev_usage

    def sample(self) -> List[VCpuSample]:
        """One monitoring pass over all hosted vCPUs.

        VM teardown races with the walk on a real host; such vCPUs are
        silently skipped, exactly as a production monitor must (see
        :meth:`HostBackend.read_vcpu_samples`).

        With ``stale_max_age > 0`` a vCPU that was observed before but
        is missing from this pass (transient read error, tid churn) is
        *carried forward*: its last sample is appended again, for up to
        ``stale_max_age`` consecutive ticks.  Beyond that age the vCPU
        goes unreported and :meth:`missing_ages` keeps counting — the
        controller's degraded-mode policy takes over from there.
        """
        fresh = self.backend.read_vcpu_samples(self.period_s)
        if self.stale_max_age <= 0:
            return fresh
        out = list(fresh)
        seen = {s.cgroup_path for s in fresh}
        self.last_carried = 0
        for path in list(self._last_seen):
            if path in seen:
                self._missing_age.pop(path, None)
                continue
            age = self._missing_age.get(path, 0) + 1
            self._missing_age[path] = age
            if age <= self.stale_max_age:
                out.append(self._last_seen[path])
                self.last_carried += 1
                self.stale_carried += 1
        for s in fresh:
            self._last_seen[s.cgroup_path] = s
        return out

    def sample_into(self, table, registered, guarantees, caps):
        """One monitoring pass landing directly in :class:`VcpuTable` slots.

        The vectorised engine's stage 1: samples are filtered to
        registered VMs (same predicate as the scalar tick) and gathered
        into sample-order arrays, assigning slots to new vCPUs on the
        fly.  Returns ``(samples, view)`` — the filtered sample list for
        the report plus the :class:`~repro.core.soa.TickView`.
        """
        samples = [s for s in self.sample() if s.vm_name in registered]
        view = table.ingest(samples, guarantees.__getitem__, caps)
        return samples, view

    def missing_ages(self) -> Dict[str, int]:
        """Consecutive ticks each known vCPU has gone unobserved.

        Only meaningful with ``stale_max_age > 0``; paths currently
        observed are absent (age 0).
        """
        return dict(self._missing_age)

    def forget(self, vcpu_path: str) -> None:
        """Drop state for a destroyed vCPU cgroup."""
        self.backend.forget_usage(vcpu_path)
        self._last_seen.pop(vcpu_path, None)
        self._missing_age.pop(vcpu_path, None)

    def reset(self) -> None:
        """Clear all monitoring state (snapshot restore onto a used
        instance); the backend usage baselines are cleared too."""
        self.backend._prev_usage.clear()
        self.backend.invalidate()
        self._last_seen.clear()
        self._missing_age.clear()
        self.last_carried = 0
