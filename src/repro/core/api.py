"""The shared controller API.

Engines, the multi-node control plane and the benchmarks accept *any*
per-node controller — the paper's :class:`VirtualFrequencyController`
or the VMDFS-style share baseline — through one structural protocol,
so no caller ever needs an ``isinstance`` check:

* ``register_vm(vm_name, vfreq_mhz)`` — declare a hosted VM (the
  baseline ignores the frequency; it has no notion of guarantees,
  which is exactly the §II criticism);
* ``unregister_vm(vm_name)`` — drop all state for a departed VM;
* ``tick(t) -> ControllerReport`` — one control iteration at
  simulation time ``t``;
* ``period_s`` — the loop period, so engines can schedule ticks
  without reaching into implementation-specific config objects.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.controller import ControllerReport


@runtime_checkable
class Controller(Protocol):
    """What every per-node controller exposes to engines and managers."""

    #: Control-loop period in seconds.
    period_s: float

    def register_vm(
        self, vm_name: str, vfreq_mhz: float, *, tenant: Optional[str] = None
    ) -> None:
        """Declare a hosted VM (and its guaranteed virtual frequency).

        ``tenant`` optionally names the billing owner; controllers that
        don't bill may ignore it.
        """
        ...

    def unregister_vm(self, vm_name: str) -> None:
        """Forget a departed VM's state."""
        ...

    def tick(self, t: float) -> "ControllerReport":
        """Run one control iteration at simulation time ``t``."""
        ...
