"""The paper's contribution: the virtual frequency controller.

Six-stage feedback loop (paper Fig. 2), triggered every ``p`` seconds:

1. :mod:`repro.core.monitor`   — read vCPU consumption + estimate vfreq
2. :mod:`repro.core.estimator` — predict upcoming utilisation (Eq. 3)
3. :mod:`repro.core.credits`   — credits (Eq. 4) + base capping (Eq. 5)
4. :mod:`repro.core.auction`   — market (Eq. 6) + cycle auction (Alg. 1)
5. :mod:`repro.core.distribute`— free distribution of leftovers
6. :mod:`repro.core.enforcer`  — write ``cpu.max``

The controller only touches kernel surfaces (cgroupfs, /proc, sysfs), so
it runs unchanged against any host exposing those files.
"""

from repro.core.api import Controller
from repro.core.backend import BackendStats, BatchStats, HostBackend, SampleBatch
from repro.core.config import ControllerConfig
from repro.core.units import cycles_per_period, guaranteed_cycles, cycles_to_mhz, mhz_to_cycles
from repro.core.monitor import Monitor, VCpuSample
from repro.core.estimator import TrendEstimator, EstimatorDecision
from repro.core.credits import CreditLedger, apply_base_capping
from repro.core.auction import run_auction, AuctionOutcome
from repro.core.distribute import distribute_leftovers
from repro.core.enforcer import Enforcer
from repro.core.controller import VirtualFrequencyController, ControllerReport
from repro.core.resilience import DegradedVcpu, ResiliencePolicy, ResilienceStats
from repro.core.snapshot import snapshot, restore, to_json, from_json
from repro.core.soa import VcpuTable, TickView
from repro.core.metrics_export import (
    MetricsBuffer,
    render_backend_stats,
    render_billing,
    render_cluster,
    render_controller,
    render_fault_stats,
    render_node_manager,
    render_rebalance,
    render_report,
    render_resilience,
    render_span_seconds,
    render_stage_seconds,
)

__all__ = [
    "Controller",
    "HostBackend",
    "BackendStats",
    "BatchStats",
    "SampleBatch",
    "ControllerConfig",
    "cycles_per_period",
    "guaranteed_cycles",
    "cycles_to_mhz",
    "mhz_to_cycles",
    "Monitor",
    "VCpuSample",
    "TrendEstimator",
    "EstimatorDecision",
    "CreditLedger",
    "apply_base_capping",
    "run_auction",
    "AuctionOutcome",
    "distribute_leftovers",
    "Enforcer",
    "VirtualFrequencyController",
    "ControllerReport",
    "ResiliencePolicy",
    "ResilienceStats",
    "DegradedVcpu",
    "snapshot",
    "restore",
    "to_json",
    "from_json",
    "VcpuTable",
    "TickView",
    "render_stage_seconds",
    "render_span_seconds",
    "render_cluster",
    "MetricsBuffer",
    "render_backend_stats",
    "render_billing",
    "render_controller",
    "render_fault_stats",
    "render_node_manager",
    "render_rebalance",
    "render_report",
    "render_resilience",
]
