"""Stage 4 — the cycles auction (paper §III-B4, Eq. 6 and Algorithm 1).

Cycles left unallocated after the base capping form the *market*
(Eq. 6).  They are sold to *buyers* — vCPUs whose allocation is below
their estimate — in rounds of at most ``window`` cycles per VM per
round, paid 1:1 from the VM's credit wallet.  The window prevents a rich
VM from draining the market; rounds iterate over VMs in descending
wallet order (priority to frugal VMs) until the market is empty, every
buyer is satisfied, or no remaining buyer can pay.

Implementation: an incremental heap instead of a per-round re-sort.
The naive Algorithm 1 sorts every VM each round and rebuilds the sort
key closure, costing ``O(rounds * V log V)`` on a dense host where the
window makes rounds numerous by design.  Here the shopping order is a
single heap built once per auction, keyed on
``(round, -priority, -wallet, vm)``; a VM that buys is lazily
re-inserted for the next round with its post-purchase wallet — which is
exactly the balance the old per-round sort would have observed at that
round's start, so the purchase sequence (and therefore every outcome
field, including ``rounds``) is bit-identical to the round-based
original at ``O(purchases * log V)``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from repro.core.credits import CreditLedger


@dataclass
class AuctionOutcome:
    """Result of one auction: per-vCPU purchased cycles and market left."""

    purchased: Dict[str, float] = field(default_factory=dict)
    market_left: float = 0.0
    rounds: int = 0
    spent_per_vm: Dict[str, float] = field(default_factory=dict)


def compute_market(total_cycles: float, allocations: Mapping[str, float]) -> float:
    """Eq. 6: node cycle budget minus the sum of current allocations."""
    market = total_cycles - sum(allocations.values())
    return max(0.0, market)


def run_auction(
    market: float,
    demands: Mapping[str, float],
    vm_of: Mapping[str, str],
    ledger: CreditLedger,
    window: float,
    priorities: "Mapping[str, float] | None" = None,
) -> AuctionOutcome:
    """Algorithm 1 — sell ``market`` cycles to credit-holding buyers.

    Parameters
    ----------
    market:
        Unallocated cycles to sell.
    demands:
        Residual demand per vCPU path (``e - c``, only entries > 0 count).
    vm_of:
        vCPU path -> owning VM name (wallets are per VM).
    ledger:
        Credit wallets; purchases are deducted.
    window:
        Max cycles one VM may buy per round.
    priorities:
        Optional per-VM priority (e.g. the guaranteed frequency, for the
        paper's §V cache-aware extension): higher-priority VMs shop
        before richer ones; credits break ties.
    """
    if market < 0:
        raise ValueError("market must be >= 0")
    if window <= 0:
        raise ValueError("window must be positive")

    outcome = AuctionOutcome(market_left=market)
    if market <= 0:
        return outcome
    # Residual demand grouped by VM, preserving per-vCPU detail.  Paths
    # of VMs that cannot pay at all are dropped here: their wallet only
    # shrinks during an auction, so they could never buy — admitting
    # them would just burn a heap pop per broke VM.
    balances: Dict[str, float] = {}
    residual: Dict[str, float] = {}
    by_vm: Dict[str, List[str]] = {}
    any_demand = False
    for path, need in demands.items():
        if need <= 1e-9:
            continue
        any_demand = True
        vm = vm_of[path]
        balance = balances.get(vm)
        if balance is None:
            balance = balances[vm] = ledger.balance(vm)
        if balance <= 1e-9:
            continue
        residual[path] = need
        by_vm.setdefault(vm, []).append(path)
    if not by_vm:
        # With demand but no funded buyer the round-based loop would
        # still have entered one round before noticing nobody can pay.
        outcome.rounds = 1 if any_demand else 0
        return outcome
    # A VM's purchase is spread over its vCPUs greedily in list order;
    # sort once so the outcome does not depend on the monitor's dict
    # insertion order (stable under sample reordering).
    for paths in by_vm.values():
        paths.sort()

    def entry(round_no: int, vm: str, balance: float):
        # heapq pops the smallest tuple: earliest round first, then the
        # descending (priority, wallet) order of the per-round sort, VM
        # name as the total-order tie break.
        if priorities is None:
            return (round_no, -balance, vm)
        return (round_no, -priorities.get(vm, 0.0), -balance, vm)

    heap = [entry(1, vm, balances[vm]) for vm in by_vm]
    heapq.heapify(heap)

    rounds_entered = 0
    progress_in_round = False
    while heap and outcome.market_left > 1e-9:
        item = heapq.heappop(heap)
        round_no, vm = item[0], item[-1]
        if round_no > rounds_entered:
            rounds_entered = round_no
            progress_in_round = False
        balance = ledger.balance(vm)
        if balance <= 1e-9:
            continue
        vm_need = sum(residual[p] for p in by_vm[vm])
        if vm_need <= 1e-9:
            continue
        buy = min(window, vm_need, balance, outcome.market_left)
        if buy <= 1e-9:
            continue
        _allocate_to_vcpus(by_vm[vm], residual, buy, outcome.purchased)
        ledger.spend(vm, buy)
        outcome.spent_per_vm[vm] = outcome.spent_per_vm.get(vm, 0.0) + buy
        outcome.market_left -= buy
        progress_in_round = True
        new_balance = ledger.balance(vm)
        # Re-enter the next round under the same conditions the per-round
        # original would re-admit this VM (need recomputed from the
        # residual map, not decremented — the rounding can differ).
        new_need = sum(residual[p] for p in by_vm[vm])
        if new_balance > 1e-9 and new_need > 1e-9:
            heapq.heappush(heap, entry(round_no + 1, vm, new_balance))
    # Round accounting matches the per-round original: when the heap
    # drains with market left, the old loop would still have entered one
    # more (empty) round before noticing nobody can buy — unless the
    # last entered round was already progress-free.
    if outcome.market_left > 1e-9 and progress_in_round:
        rounds_entered += 1
    outcome.rounds = rounds_entered
    return outcome


def _allocate_to_vcpus(
    paths: List[str],
    residual: Dict[str, float],
    amount: float,
    purchased: Dict[str, float],
) -> None:
    """Spread a VM's purchase across its needing vCPUs, greedily in order."""
    remaining = amount
    for path in paths:
        if remaining <= 1e-12:
            break
        take = min(residual[path], remaining)
        if take <= 0:
            continue
        residual[path] -= take
        purchased[path] = purchased.get(path, 0.0) + take
        remaining -= take
    if remaining > 1e-6:
        raise AssertionError(
            f"auction invariant violated: {remaining} cycles bought but unassignable"
        )
