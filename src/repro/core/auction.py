"""Stage 4 — the cycles auction (paper §III-B4, Eq. 6 and Algorithm 1).

Cycles left unallocated after the base capping form the *market*
(Eq. 6).  They are sold to *buyers* — vCPUs whose allocation is below
their estimate — in rounds of at most ``window`` cycles per VM per
round, paid 1:1 from the VM's credit wallet.  The window prevents a rich
VM from draining the market; rounds iterate over VMs in descending
wallet order (priority to frugal VMs) until the market is empty, every
buyer is satisfied, or no remaining buyer can pay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from repro.core.credits import CreditLedger


@dataclass
class AuctionOutcome:
    """Result of one auction: per-vCPU purchased cycles and market left."""

    purchased: Dict[str, float] = field(default_factory=dict)
    market_left: float = 0.0
    rounds: int = 0
    spent_per_vm: Dict[str, float] = field(default_factory=dict)


def compute_market(total_cycles: float, allocations: Mapping[str, float]) -> float:
    """Eq. 6: node cycle budget minus the sum of current allocations."""
    market = total_cycles - sum(allocations.values())
    return max(0.0, market)


def run_auction(
    market: float,
    demands: Mapping[str, float],
    vm_of: Mapping[str, str],
    ledger: CreditLedger,
    window: float,
    priorities: "Mapping[str, float] | None" = None,
) -> AuctionOutcome:
    """Algorithm 1 — sell ``market`` cycles to credit-holding buyers.

    Parameters
    ----------
    market:
        Unallocated cycles to sell.
    demands:
        Residual demand per vCPU path (``e - c``, only entries > 0 count).
    vm_of:
        vCPU path -> owning VM name (wallets are per VM).
    ledger:
        Credit wallets; purchases are deducted.
    window:
        Max cycles one VM may buy per round.
    priorities:
        Optional per-VM priority (e.g. the guaranteed frequency, for the
        paper's §V cache-aware extension): higher-priority VMs shop
        before richer ones; credits break ties.
    """
    if market < 0:
        raise ValueError("market must be >= 0")
    if window <= 0:
        raise ValueError("window must be positive")

    outcome = AuctionOutcome(market_left=market)
    # Residual demand grouped by VM, preserving per-vCPU detail.
    residual: Dict[str, float] = {
        path: need for path, need in demands.items() if need > 1e-9
    }
    if not residual or market <= 0:
        return outcome

    by_vm: Dict[str, List[str]] = {}
    for path in residual:
        by_vm.setdefault(vm_of[path], []).append(path)

    while outcome.market_left > 1e-9:
        # Descending wallet order each round: frugal VMs shop first.
        # With explicit priorities, those dominate and wallets break ties.
        def _key(kv: Tuple[float, str]):
            balance, vm = kv
            if priorities is None:
                return (-balance, vm)
            return (-priorities.get(vm, 0.0), -balance, vm)

        order: List[Tuple[float, str]] = sorted(
            ((ledger.balance(vm), vm) for vm in by_vm), key=_key
        )
        progress = False
        for balance, vm in order:
            if balance <= 1e-9:
                continue
            vm_need = sum(residual[p] for p in by_vm[vm])
            if vm_need <= 1e-9:
                continue
            buy = min(window, vm_need, balance, outcome.market_left)
            if buy <= 1e-9:
                continue
            _allocate_to_vcpus(by_vm[vm], residual, buy, outcome.purchased)
            ledger.spend(vm, buy)
            outcome.spent_per_vm[vm] = outcome.spent_per_vm.get(vm, 0.0) + buy
            outcome.market_left -= buy
            progress = True
            if outcome.market_left <= 1e-9:
                break
        outcome.rounds += 1
        if not progress:
            break  # nobody could buy: rich VMs satisfied, poor VMs broke
    return outcome


def _allocate_to_vcpus(
    paths: List[str],
    residual: Dict[str, float],
    amount: float,
    purchased: Dict[str, float],
) -> None:
    """Spread a VM's purchase across its needing vCPUs, greedily in order."""
    remaining = amount
    for path in paths:
        if remaining <= 1e-12:
            break
        take = min(residual[path], remaining)
        if take <= 0:
            continue
        residual[path] -= take
        purchased[path] = purchased.get(path, 0.0) + take
        remaining -= take
    if remaining > 1e-6:
        raise AssertionError(
            f"auction invariant violated: {remaining} cycles bought but unassignable"
        )
