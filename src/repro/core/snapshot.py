"""Controller state snapshot / restore.

A host-side controller restarts (upgrades, crashes) without the VMs
going anywhere.  Restarting the paper's controller cold would forget
every credit wallet — a frugal VM's accumulated purchasing power — and
every consumption history, so the first iterations after a restart would
misprice the auction.  Snapshots capture the controller's entire mutable
state as a JSON-serialisable dict; restoring onto a fresh instance
resumes control exactly where the old one stopped.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.core.controller import VirtualFrequencyController

#: Schema version for forwards compatibility.
SNAPSHOT_VERSION = 1


def snapshot(controller: VirtualFrequencyController) -> Dict:
    """Capture all mutable controller state."""
    return {
        "version": SNAPSHOT_VERSION,
        "vm_vfreq": dict(controller._vm_vfreq),
        "tenants": dict(controller._vm_tenant),
        "wallets": controller.ledger.wallets(),
        "current_caps": dict(controller._current_cap),
        "histories": controller.histories(),
        "prev_usage": dict(controller.monitor._prev_usage),
    }


def to_json(controller: VirtualFrequencyController) -> str:
    """Snapshot as a JSON string (what an operator would persist)."""
    return json.dumps(snapshot(controller), sort_keys=True)


def validate(controller: VirtualFrequencyController, state: Dict) -> None:
    """Reject a malformed snapshot *before* any controller state moves.

    Restore used to mutate first and raise halfway through, leaving the
    target corrupted; every invariant is now checked up front.
    """
    version = state.get("version")
    if version != SNAPSHOT_VERSION:
        raise ValueError(
            f"unsupported snapshot version {version!r} "
            f"(expected {SNAPSHOT_VERSION})"
        )
    missing = {
        "vm_vfreq", "wallets", "current_caps", "histories", "prev_usage"
    } - set(state)
    if missing:
        raise ValueError(
            f"corrupt snapshot: missing field(s) {', '.join(sorted(missing))}"
        )
    for vm_name, vfreq in state["vm_vfreq"].items():
        if float(vfreq) <= 0:
            raise ValueError(f"corrupt snapshot: bad vfreq for {vm_name}")
        if float(vfreq) > controller.fmax_mhz:
            raise ValueError(
                f"corrupt snapshot: {vm_name} guarantee {vfreq} MHz exceeds "
                f"host F_MAX {controller.fmax_mhz} MHz"
            )
    for vm_name, balance in state["wallets"].items():
        if balance < 0:
            raise ValueError(f"corrupt snapshot: negative wallet for {vm_name}")
    for path, cap in state["current_caps"].items():
        if float(cap) < 0:
            raise ValueError(f"corrupt snapshot: negative cap for {path}")


def restore(controller: VirtualFrequencyController, state: Dict) -> None:
    """Load a snapshot into a controller instance, fresh or not.

    The snapshot is validated first, then the controller is
    :meth:`~repro.core.controller.VirtualFrequencyController.reset` so
    restoring onto a non-fresh instance cannot double-register VMs or
    replay histories on top of live ones.  The controller's
    configuration is *not* part of the snapshot — the operator may
    restart with new knobs; only dynamic state is restored.
    """
    validate(controller, state)
    controller.reset()
    # "tenants" is optional (pre-billing snapshots lack it); absent
    # entries fall back to the default tenant at registration.
    tenants = state.get("tenants", {})
    for vm_name, vfreq in state["vm_vfreq"].items():
        controller.register_vm(
            vm_name, float(vfreq), tenant=tenants.get(vm_name)
        )
    for vm_name, balance in state["wallets"].items():
        controller.ledger.set_balance(vm_name, float(balance))
    controller._current_cap.update(
        {path: float(c) for path, c in state["current_caps"].items()}
    )
    for path, history in state["histories"].items():
        controller.load_history(path, [float(v) for v in history])
    controller.monitor._prev_usage.update(
        {path: float(u) for path, u in state["prev_usage"].items()}
    )
    if controller.invariant_checker is not None:
        # The ledger-delta oracle must re-baseline on the restored
        # wallets, not the pre-restore ones.
        controller.invariant_checker.resync()


def from_json(controller: VirtualFrequencyController, payload: str) -> None:
    restore(controller, json.loads(payload))
