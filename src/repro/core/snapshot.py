"""Controller state snapshot / restore.

A host-side controller restarts (upgrades, crashes) without the VMs
going anywhere.  Restarting the paper's controller cold would forget
every credit wallet — a frugal VM's accumulated purchasing power — and
every consumption history, so the first iterations after a restart would
misprice the auction.  Snapshots capture the controller's entire mutable
state as a JSON-serialisable dict; restoring onto a fresh instance
resumes control exactly where the old one stopped.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.core.controller import VirtualFrequencyController

#: Schema version for forwards compatibility.
SNAPSHOT_VERSION = 1


def snapshot(controller: VirtualFrequencyController) -> Dict:
    """Capture all mutable controller state."""
    return {
        "version": SNAPSHOT_VERSION,
        "vm_vfreq": dict(controller._vm_vfreq),
        "wallets": controller.ledger.wallets(),
        "current_caps": dict(controller._current_cap),
        "histories": {
            path: list(hist)
            for path, hist in controller.estimator._history.items()
        },
        "prev_usage": dict(controller.monitor._prev_usage),
    }


def to_json(controller: VirtualFrequencyController) -> str:
    """Snapshot as a JSON string (what an operator would persist)."""
    return json.dumps(snapshot(controller), sort_keys=True)


def restore(controller: VirtualFrequencyController, state: Dict) -> None:
    """Load a snapshot into a (typically fresh) controller instance.

    The controller's configuration is *not* part of the snapshot — the
    operator may restart with new knobs; only dynamic state is restored.
    """
    version = state.get("version")
    if version != SNAPSHOT_VERSION:
        raise ValueError(
            f"unsupported snapshot version {version!r} "
            f"(expected {SNAPSHOT_VERSION})"
        )
    for vm_name, vfreq in state["vm_vfreq"].items():
        controller.register_vm(vm_name, float(vfreq))
    for vm_name, balance in state["wallets"].items():
        if balance < 0:
            raise ValueError(f"corrupt snapshot: negative wallet for {vm_name}")
        controller.ledger._wallets[vm_name] = float(balance)
    controller._current_cap.update(
        {path: float(c) for path, c in state["current_caps"].items()}
    )
    for path, history in state["histories"].items():
        for value in history:
            controller.estimator.observe(path, float(value))
    controller.monitor._prev_usage.update(
        {path: float(u) for path, u in state["prev_usage"].items()}
    )


def from_json(controller: VirtualFrequencyController, payload: str) -> None:
    restore(controller, json.loads(payload))
