"""Prometheus exposition-format export of controller state.

A production controller is scraped, not printed.  This renders the
latest :class:`~repro.core.controller.ControllerReport` (plus wallets
and config) as the Prometheus text format, ready to serve from a
``/metrics`` endpoint (``repro serve-metrics`` does exactly that):

    vfreq_vcpu_consumed_cycles{vm="small-0",vcpu="0"} 208211
    vfreq_vcpu_allocated_cycles{vm="small-0",vcpu="0"} 208333
    vfreq_vcpu_estimated_mhz{vm="small-0",vcpu="0"} 499.7
    vfreq_vm_credit_cycles{vm="small-0"} 1.25e+06
    vfreq_market_initial_cycles 1666667
    vfreq_iteration_seconds{stage="monitor"} 0.0021
    vfreq_span_seconds_bucket{stage="monitor",le="0.001"} 17

Every render function writes through a :class:`MetricsBuffer`, which
groups samples by metric family and emits each family's ``# HELP`` /
``# TYPE`` header exactly once with all its samples contiguous — the
text-exposition rules a real Prometheus scraper enforces.  Called
standalone (no ``buf``), each function still returns its own complete,
valid exposition; to compose several sources into one page (controller
+ node-manager aggregates, or a whole cluster) pass one shared buffer —
:func:`render_cluster` does this, disambiguating per-node series with a
``node`` label so identically-named samples never collide.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.backend import BackendStats
from repro.core.controller import ControllerReport, VirtualFrequencyController

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.tracing import Tracer
    from repro.sim.node_manager import NodeManager

_STAGES = ("monitor", "estimate", "credits", "auction", "distribute", "enforce")


def _escape(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """Escape HELP text (backslash and newline only — no quotes)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _line(name: str, value: float, **labels: str) -> str:
    if labels:
        inner = ",".join(f'{k}="{_escape(v)}"' for k, v in sorted(labels.items()))
        return f"{name}{{{inner}}} {value:g}"
    return f"{name} {value:g}"


class MetricsBuffer:
    """Family-grouped sample collector for one exposition page.

    ``family()`` declares a metric family (first declaration wins);
    ``add()`` appends one sample to it.  ``text()`` renders families in
    first-seen order, each with one ``# HELP`` / ``# TYPE`` header and
    its samples contiguous — so any number of render functions can share
    one buffer without ever duplicating a header or splitting a family.
    """

    def __init__(self) -> None:
        self._order: List[str] = []
        self._meta: Dict[str, Tuple[str, str]] = {}
        self._samples: Dict[str, List[str]] = {}

    def family(self, name: str, mtype: str, help_text: str) -> None:
        if name not in self._meta:
            self._meta[name] = (mtype, help_text)
            self._order.append(name)
            self._samples[name] = []

    def add(self, family: str, value: float, suffix: str = "", **labels: str) -> None:
        """One sample; ``suffix`` covers ``_bucket``/``_sum``/``_count``."""
        if family not in self._meta:
            raise KeyError(f"undeclared metric family: {family}")
        self._samples[family].append(_line(family + suffix, value, **labels))

    def text(self) -> str:
        lines: List[str] = []
        for name in self._order:
            mtype, help_text = self._meta[name]
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
            lines.append(f"# TYPE {name} {mtype}")
            lines.extend(self._samples[name])
        return "\n".join(lines) + "\n"


def _merged(labels: Dict[str, str], extra: Optional[Dict[str, str]]) -> Dict[str, str]:
    if not extra:
        return labels
    out = dict(labels)
    out.update(extra)
    return out


def render_report(
    report: ControllerReport,
    buf: Optional[MetricsBuffer] = None,
    extra_labels: Optional[Dict[str, str]] = None,
) -> str:
    """Render one iteration's observations and decisions."""
    own = buf is None
    if own:
        buf = MetricsBuffer()
    buf.family(
        "vfreq_vcpu_consumed_cycles", "gauge",
        "Cycles consumed last period (us).",
    )
    for s in report.samples:
        labels = _merged({"vm": s.vm_name, "vcpu": str(s.vcpu_index)}, extra_labels)
        buf.add("vfreq_vcpu_consumed_cycles", s.consumed_cycles, **labels)
    buf.family(
        "vfreq_vcpu_estimated_mhz", "gauge", "Estimated virtual frequency."
    )
    for s in report.samples:
        labels = _merged({"vm": s.vm_name, "vcpu": str(s.vcpu_index)}, extra_labels)
        buf.add("vfreq_vcpu_estimated_mhz", s.vfreq_mhz, **labels)
    if report.allocations:
        buf.family(
            "vfreq_vcpu_allocated_cycles", "gauge",
            "Capping applied this period (us).",
        )
        for s in report.samples:
            alloc = report.allocations.get(s.cgroup_path)
            if alloc is None:
                continue
            labels = _merged(
                {"vm": s.vm_name, "vcpu": str(s.vcpu_index)}, extra_labels
            )
            buf.add("vfreq_vcpu_allocated_cycles", alloc, **labels)
    buf.family("vfreq_vm_credit_cycles", "gauge", "Auction wallet balance.")
    for vm, balance in sorted(report.wallets.items()):
        buf.add(
            "vfreq_vm_credit_cycles", balance, **_merged({"vm": vm}, extra_labels)
        )
    buf.family(
        "vfreq_market_initial_cycles", "gauge",
        "Unallocated cycles before the auction.",
    )
    buf.add(
        "vfreq_market_initial_cycles", report.market_initial,
        **_merged({}, extra_labels),
    )
    buf.family(
        "vfreq_iteration_seconds", "gauge",
        "Wall time of each controller stage.",
    )
    for stage in _STAGES:
        buf.add(
            "vfreq_iteration_seconds", getattr(report.timings, stage),
            **_merged({"stage": stage}, extra_labels),
        )
    return buf.text() if own else ""


def render_backend_stats(
    stats: BackendStats,
    buf: Optional[MetricsBuffer] = None,
    extra_labels: Optional[Dict[str, str]] = None,
) -> str:
    """Render cumulative kernel-surface operation counters.

    One counter family labelled by operation kind, so a dashboard can
    graph the monitoring syscall budget the paper worries about
    (§IV-A2: monitoring dominates iteration cost).
    """
    own = buf is None
    if own:
        buf = MetricsBuffer()
    buf.family(
        "vfreq_backend_ops_total", "counter",
        "Kernel-surface operations issued.",
    )
    for op, count in stats.as_dict().items():
        buf.add(
            "vfreq_backend_ops_total", count, **_merged({"op": op}, extra_labels)
        )
    return buf.text() if own else ""


def render_resilience(
    controller: VirtualFrequencyController,
    buf: Optional[MetricsBuffer] = None,
    extra_labels: Optional[Dict[str, str]] = None,
) -> str:
    """Render fault-handling counters of a resilient controller.

    One event-counter family from :class:`~repro.core.resilience.
    ResilienceStats`, the degraded-vCPU gauge an operator alerts on,
    and the latest crash/occlusion recovery latency in ticks.
    """
    own = buf is None
    if own:
        buf = MetricsBuffer()
    stats = controller.resilience_stats
    buf.family(
        "vfreq_resilience_events_total", "counter", "Fault-handling events."
    )
    for event, count in stats.as_dict().items():
        if event == "last_recovery_ticks":
            continue
        buf.add(
            "vfreq_resilience_events_total", count,
            **_merged({"event": event}, extra_labels),
        )
    buf.family(
        "vfreq_degraded_vcpus", "gauge", "vCPUs currently on fallback capping."
    )
    buf.add(
        "vfreq_degraded_vcpus", controller.degraded_vcpus,
        **_merged({}, extra_labels),
    )
    buf.family(
        "vfreq_recovery_latency_ticks", "gauge",
        "Ticks the last recovered vCPU spent degraded.",
    )
    buf.add(
        "vfreq_recovery_latency_ticks", stats.last_recovery_ticks,
        **_merged({}, extra_labels),
    )
    return buf.text() if own else ""


def render_fault_stats(
    injector,
    buf: Optional[MetricsBuffer] = None,
    extra_labels: Optional[Dict[str, str]] = None,
) -> str:
    """Render injected-fault counters of a FaultInjector backend."""
    own = buf is None
    if own:
        buf = MetricsBuffer()
    buf.family(
        "vfreq_faults_injected_total", "counter",
        "Faults fired by the active plan.",
    )
    for kind, count in sorted(injector.injected.items()):
        buf.add(
            "vfreq_faults_injected_total", count,
            **_merged({"kind": kind}, extra_labels),
        )
    return buf.text() if own else ""


def render_stage_seconds(
    controller: VirtualFrequencyController,
    buf: Optional[MetricsBuffer] = None,
    extra_labels: Optional[Dict[str, str]] = None,
) -> str:
    """Render mean per-stage tick cost over the retained reports.

    ``vfreq_iteration_seconds`` is the latest tick only; this family is
    the running average an operator tracks when comparing the scalar
    and vectorised engines (see docs/performance.md), labelled with the
    active engine so a dashboard can split the series on switch-over.
    """
    own = buf is None
    if own:
        buf = MetricsBuffer()
    reports = controller.reports
    buf.family(
        "vfreq_stage_seconds", "gauge", "Mean wall time per controller stage."
    )
    n = len(reports)
    engine = controller.config.engine
    for stage in _STAGES:
        mean = (
            sum(getattr(r.timings, stage) for r in reports) / n if n else 0.0
        )
        buf.add(
            "vfreq_stage_seconds", mean,
            **_merged({"stage": stage, "engine": engine}, extra_labels),
        )
    return buf.text() if own else ""


def render_span_seconds(
    tracer: "Tracer",
    buf: Optional[MetricsBuffer] = None,
    extra_labels: Optional[Dict[str, str]] = None,
) -> str:
    """Render the tracer's per-stage duration histograms.

    One Prometheus histogram family ``vfreq_span_seconds`` labelled by
    stage: cumulative ``_bucket{le=...}`` series (``+Inf`` included),
    plus ``_sum`` and ``_count`` — fed by every ``stage:*`` span the
    tracer has seen, so quantiles cover the whole run, not just the
    latest tick.
    """
    own = buf is None
    if own:
        buf = MetricsBuffer()
    buf.family(
        "vfreq_span_seconds", "histogram",
        "Distribution of per-stage span durations.",
    )
    for stage in sorted(tracer.histograms):
        hist = tracer.histograms[stage]
        for bound, cum in zip(hist.bounds, hist.cumulative()):
            buf.add(
                "vfreq_span_seconds", cum, suffix="_bucket",
                **_merged({"stage": stage, "le": f"{bound:g}"}, extra_labels),
            )
        buf.add(
            "vfreq_span_seconds", hist.count, suffix="_bucket",
            **_merged({"stage": stage, "le": "+Inf"}, extra_labels),
        )
        buf.add(
            "vfreq_span_seconds", hist.sum, suffix="_sum",
            **_merged({"stage": stage}, extra_labels),
        )
        buf.add(
            "vfreq_span_seconds", hist.count, suffix="_count",
            **_merged({"stage": stage}, extra_labels),
        )
    return buf.text() if own else ""


def _render_histogram(
    buf: MetricsBuffer,
    family: str,
    hist,
    labels: Dict[str, str],
    extra_labels: Optional[Dict[str, str]],
) -> None:
    """One Prometheus histogram: cumulative buckets + _sum + _count."""
    for bound, cum in zip(hist.bounds, hist.cumulative()):
        buf.add(
            family, cum, suffix="_bucket",
            **_merged({**labels, "le": f"{bound:g}"}, extra_labels),
        )
    buf.add(
        family, hist.count, suffix="_bucket",
        **_merged({**labels, "le": "+Inf"}, extra_labels),
    )
    buf.add(family, hist.sum, suffix="_sum", **_merged(labels, extra_labels))
    buf.add(family, hist.count, suffix="_count", **_merged(labels, extra_labels))


def render_rebalance(
    loop,
    buf: Optional[MetricsBuffer] = None,
    extra_labels: Optional[Dict[str, str]] = None,
) -> str:
    """Render a rebalance loop's counters and latency histograms.

    ``loop`` is duck-typed (:class:`repro.rebalance.loop.RebalanceLoop`
    — importing it here would close a cycle through ``checking``):
    anything with ``rounds_total`` / ``migrations_total`` /
    ``migrations_rejected`` / ``round_hist`` / ``migration_hist``
    renders.  ``vfreq_migrations_total`` is labelled by the planner
    goal (``reason``) so a dashboard can tell pressure relief from
    consolidation and drains apart.
    """
    own = buf is None
    if own:
        buf = MetricsBuffer()
    buf.family(
        "vfreq_rebalance_rounds_total", "counter",
        "Rebalance planner rounds executed.",
    )
    buf.add(
        "vfreq_rebalance_rounds_total", loop.rounds_total,
        **_merged({}, extra_labels),
    )
    buf.family(
        "vfreq_migrations_total", "counter",
        "Live migrations started, per planner goal.",
    )
    for reason, count in sorted(loop.migrations_total.items()):
        buf.add(
            "vfreq_migrations_total", count,
            **_merged({"reason": reason}, extra_labels),
        )
    if loop.migrations_rejected:
        buf.add(
            "vfreq_migrations_total", loop.migrations_rejected,
            **_merged({"reason": "rejected"}, extra_labels),
        )
    buf.family(
        "vfreq_migration_seconds", "histogram",
        "Distribution of live-migration durations.",
    )
    _render_histogram(
        buf, "vfreq_migration_seconds", loop.migration_hist, {}, extra_labels
    )
    buf.family(
        "vfreq_rebalance_round_seconds", "histogram",
        "Distribution of planner round wall time.",
    )
    _render_histogram(
        buf, "vfreq_rebalance_round_seconds", loop.round_hist, {}, extra_labels
    )
    return buf.text() if own else ""


def render_invariants(
    checker,
    buf: Optional[MetricsBuffer] = None,
    extra_labels: Optional[Dict[str, str]] = None,
) -> str:
    """Render the inline invariant oracle's counters.

    ``vfreq_invariant_violations_total`` is the alert an operator pages
    on — any non-zero value means a paper-equation guarantee was broken
    in production.  Per-invariant labels use the catalogue names from
    :mod:`repro.checking.invariants`.
    """
    own = buf is None
    if own:
        buf = MetricsBuffer()
    buf.family(
        "vfreq_invariant_checks_total", "counter",
        "Tick-level oracle passes run.",
    )
    buf.add(
        "vfreq_invariant_checks_total", checker.checks_total,
        **_merged({}, extra_labels),
    )
    buf.family(
        "vfreq_invariant_violations_total", "counter",
        "Broken paper-equation invariants.",
    )
    buf.add(
        "vfreq_invariant_violations_total", checker.violations_total,
        **_merged({}, extra_labels),
    )
    for invariant, count in sorted(checker.violations_by_invariant.items()):
        buf.add(
            "vfreq_invariant_violations_total", count,
            **_merged({"invariant": invariant}, extra_labels),
        )
    return buf.text() if own else ""


def render_billing(
    engine,
    buf: Optional[MetricsBuffer] = None,
    extra_labels: Optional[Dict[str, str]] = None,
) -> str:
    """Render a billing engine's revenue and SLA-credit counters.

    ``engine`` is duck-typed (:class:`repro.billing.meter.BillingEngine`
    — importing it here would pull billing into every core import):
    anything holding a ``meter`` with ``usage`` / ``credits``
    accumulators renders.  Revenue is labelled by tenant and pricing
    tier, metered volume by tenant and cycle class, credits by tenant —
    the families a revenue dashboard (or an overcommit post-mortem)
    slices on.
    """
    own = buf is None
    if own:
        buf = MetricsBuffer()
    meter = engine.meter
    revenue: Dict[Tuple[str, str], float] = {}
    volume: Dict[Tuple[str, str], float] = {}
    for (tenant, _vm, _vcpu, tier, kind), cell in meter.usage.items():
        revenue[(tenant, tier)] = revenue.get((tenant, tier), 0.0) + cell[2]
        volume[(tenant, kind)] = volume.get((tenant, kind), 0.0) + cell[1]
    credits: Dict[str, float] = {}
    for (tenant, _vm, _vcpu, _tier), cell in meter.credits.items():
        credits[tenant] = credits.get(tenant, 0.0) + cell[2]
    buf.family(
        "vfreq_revenue_total", "counter",
        "Metered revenue, per tenant and pricing tier.",
    )
    for (tenant, tier), amount in sorted(revenue.items()):
        buf.add(
            "vfreq_revenue_total", amount,
            **_merged({"tenant": tenant, "tier": tier}, extra_labels),
        )
    buf.family(
        "vfreq_metered_mhz_seconds_total", "counter",
        "Metered MHz-seconds, per tenant and cycle class.",
    )
    for (tenant, kind), mhz_s in sorted(volume.items()):
        buf.add(
            "vfreq_metered_mhz_seconds_total", mhz_s,
            **_merged({"tenant": tenant, "kind": kind}, extra_labels),
        )
    buf.family(
        "vfreq_sla_credits_total", "counter",
        "SLA shortfall refunds, per tenant.",
    )
    for tenant, amount in sorted(credits.items()):
        buf.add(
            "vfreq_sla_credits_total", amount,
            **_merged({"tenant": tenant}, extra_labels),
        )
    return buf.text() if own else ""


def render_slo(
    plane,
    buf: Optional[MetricsBuffer] = None,
    extra_labels: Optional[Dict[str, str]] = None,
) -> str:
    """Render an SLO plane's budgets, firing alerts, and transitions.

    ``plane`` is duck-typed (:class:`repro.obs.slo.SLOPlane` — importing
    it here would pull the SLO plane into every core import): anything
    with ``specs`` / ``error_budget_remaining`` / ``firing_alerts`` /
    ``transitions_total`` renders.  ``vfreq_slo_error_budget_remaining``
    is per SLO (and per grouping label set — e.g. per tenant), so a
    dashboard graphs budget exhaustion directly; ``vfreq_alerts_firing``
    is the pager feed.
    """
    own = buf is None
    if own:
        buf = MetricsBuffer()
    buf.family(
        "vfreq_slo_error_budget_remaining", "gauge",
        "Unspent error-budget fraction over the budget window.",
    )
    for spec in plane.specs:
        for labelset in plane._label_sets(spec):
            labels = dict(labelset)
            buf.add(
                "vfreq_slo_error_budget_remaining",
                plane.error_budget_remaining(spec, labels),
                **_merged({**labels, "slo": spec.name}, extra_labels),
            )
    buf.family(
        "vfreq_alerts_firing", "gauge",
        "Alerts currently firing, per SLO and severity.",
    )
    counts: Dict[Tuple[str, str], int] = {}
    for alert in plane.firing_alerts():
        key = (alert["slo"], alert["severity"])
        counts[key] = counts.get(key, 0) + 1
    for (slo, severity), count in sorted(counts.items()):
        buf.add(
            "vfreq_alerts_firing", count,
            **_merged({"slo": slo, "severity": severity}, extra_labels),
        )
    buf.family(
        "vfreq_alert_transitions_total", "counter",
        "Firing/resolved alert transitions recorded.",
    )
    buf.add(
        "vfreq_alert_transitions_total", plane.transitions_total,
        **_merged({}, extra_labels),
    )
    return buf.text() if own else ""


def render_controller(
    controller: VirtualFrequencyController,
    buf: Optional[MetricsBuffer] = None,
    extra_labels: Optional[Dict[str, str]] = None,
) -> str:
    """Render the controller's most recent iteration (empty host ok)."""
    own = buf is None
    if own:
        buf = MetricsBuffer()
    if not controller.reports:
        render_report(ControllerReport(t=0.0), buf, extra_labels)
    else:
        render_report(controller.reports[-1], buf, extra_labels)
    render_stage_seconds(controller, buf, extra_labels)
    obs = getattr(controller, "obs", None)
    if obs is not None and getattr(obs, "tracer", None) is not None:
        render_span_seconds(obs.tracer, buf, extra_labels)
    checker = getattr(controller, "invariant_checker", None)
    if checker is not None:
        render_invariants(checker, buf, extra_labels)
    backend = getattr(controller, "backend", None)
    if backend is not None:
        render_backend_stats(backend.stats, buf, extra_labels)
        if hasattr(backend, "injected"):
            render_fault_stats(backend, buf, extra_labels)
    if controller.resilience is not None:
        render_resilience(controller, buf, extra_labels)
    billing = getattr(controller, "billing", None)
    if billing is not None:
        render_billing(billing, buf, extra_labels)
    slo = getattr(controller, "slo", None)
    if slo is not None:
        render_slo(slo, buf, extra_labels)
    return buf.text() if own else ""


def render_node_manager(
    manager: "NodeManager",
    buf: Optional[MetricsBuffer] = None,
    extra_labels: Optional[Dict[str, str]] = None,
) -> str:
    """Render control-plane aggregates: node count, summed stage wall
    time across the latest tick, and the cluster-wide syscall budget."""
    own = buf is None
    if own:
        buf = MetricsBuffer()
    timings = manager.aggregate_timings()
    buf.family(
        "vfreq_nodes_managed", "gauge", "Nodes under this control plane."
    )
    buf.add("vfreq_nodes_managed", manager.num_nodes, **_merged({}, extra_labels))
    buf.family(
        "vfreq_nodes_iteration_seconds", "gauge",
        "Summed stage wall time, last tick.",
    )
    for stage in _STAGES:
        buf.add(
            "vfreq_nodes_iteration_seconds", getattr(timings, stage),
            **_merged({"stage": stage}, extra_labels),
        )
    buf.family(
        "vfreq_node_tick_errors_total", "counter",
        "Ticks that raised, per node.",
    )
    for node_id, count in sorted(manager.error_counts.items()):
        buf.add(
            "vfreq_node_tick_errors_total", count,
            **_merged({"node": node_id}, extra_labels),
        )
    buf.family(
        "vfreq_nodes_failed_last_tick", "gauge",
        "Nodes whose latest tick raised.",
    )
    buf.add(
        "vfreq_nodes_failed_last_tick", len(manager.last_errors),
        **_merged({}, extra_labels),
    )
    checks, violations = manager.invariant_totals()
    if checks:
        buf.family(
            "vfreq_invariant_checks_total", "counter",
            "Tick-level oracle passes run.",
        )
        buf.add(
            "vfreq_invariant_checks_total", checks, **_merged({}, extra_labels)
        )
        buf.family(
            "vfreq_invariant_violations_total", "counter",
            "Broken paper-equation invariants.",
        )
        buf.add(
            "vfreq_invariant_violations_total", violations,
            **_merged({}, extra_labels),
        )
    render_backend_stats(manager.backend_stats(), buf, extra_labels)
    return buf.text() if own else ""


def render_cluster(manager: "NodeManager") -> str:
    """One exposition page for a whole control plane.

    Manager-level aggregates render unlabelled; every per-node
    controller's series carry a ``node`` label, so families shared
    between the two levels (backend ops, invariant counters) keep one
    header, contiguous samples, and collision-free label sets.
    """
    buf = MetricsBuffer()
    render_node_manager(manager, buf)
    for node_id, controller in manager.controllers.items():
        if isinstance(controller, VirtualFrequencyController):
            render_controller(controller, buf, {"node": node_id})
    return buf.text()
