"""Prometheus exposition-format export of controller state.

A production controller is scraped, not printed.  This renders the
latest :class:`~repro.core.controller.ControllerReport` (plus wallets
and config) as the Prometheus text format, ready to serve from a
``/metrics`` endpoint:

    vfreq_vcpu_consumed_cycles{vm="small-0",vcpu="0"} 208211
    vfreq_vcpu_allocated_cycles{vm="small-0",vcpu="0"} 208333
    vfreq_vcpu_estimated_mhz{vm="small-0",vcpu="0"} 499.7
    vfreq_vm_credit_cycles{vm="small-0"} 1.25e+06
    vfreq_market_initial_cycles 1666667
    vfreq_iteration_seconds{stage="monitor"} 0.0021
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.core.backend import BackendStats
from repro.core.controller import ControllerReport, VirtualFrequencyController

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.node_manager import NodeManager


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _line(name: str, value: float, **labels: str) -> str:
    if labels:
        inner = ",".join(f'{k}="{_escape(v)}"' for k, v in sorted(labels.items()))
        return f"{name}{{{inner}}} {value:g}"
    return f"{name} {value:g}"


def render_report(report: ControllerReport) -> str:
    """Render one iteration's observations and decisions."""
    lines: List[str] = [
        "# HELP vfreq_vcpu_consumed_cycles Cycles consumed last period (us).",
        "# TYPE vfreq_vcpu_consumed_cycles gauge",
    ]
    for s in report.samples:
        labels = {"vm": s.vm_name, "vcpu": str(s.vcpu_index)}
        lines.append(_line("vfreq_vcpu_consumed_cycles", s.consumed_cycles, **labels))
    lines += [
        "# HELP vfreq_vcpu_estimated_mhz Estimated virtual frequency.",
        "# TYPE vfreq_vcpu_estimated_mhz gauge",
    ]
    for s in report.samples:
        labels = {"vm": s.vm_name, "vcpu": str(s.vcpu_index)}
        lines.append(_line("vfreq_vcpu_estimated_mhz", s.vfreq_mhz, **labels))
    if report.allocations:
        lines += [
            "# HELP vfreq_vcpu_allocated_cycles Capping applied this period (us).",
            "# TYPE vfreq_vcpu_allocated_cycles gauge",
        ]
        for s in report.samples:
            alloc = report.allocations.get(s.cgroup_path)
            if alloc is None:
                continue
            labels = {"vm": s.vm_name, "vcpu": str(s.vcpu_index)}
            lines.append(_line("vfreq_vcpu_allocated_cycles", alloc, **labels))
    lines += [
        "# HELP vfreq_vm_credit_cycles Auction wallet balance.",
        "# TYPE vfreq_vm_credit_cycles gauge",
    ]
    for vm, balance in sorted(report.wallets.items()):
        lines.append(_line("vfreq_vm_credit_cycles", balance, vm=vm))
    lines += [
        "# HELP vfreq_market_initial_cycles Unallocated cycles before the auction.",
        "# TYPE vfreq_market_initial_cycles gauge",
        _line("vfreq_market_initial_cycles", report.market_initial),
        "# HELP vfreq_iteration_seconds Wall time of each controller stage.",
        "# TYPE vfreq_iteration_seconds gauge",
    ]
    for stage in ("monitor", "estimate", "credits", "auction", "distribute", "enforce"):
        lines.append(
            _line("vfreq_iteration_seconds", getattr(report.timings, stage), stage=stage)
        )
    return "\n".join(lines) + "\n"


def render_backend_stats(stats: BackendStats) -> str:
    """Render cumulative kernel-surface operation counters.

    One counter family labelled by operation kind, so a dashboard can
    graph the monitoring syscall budget the paper worries about
    (§IV-A2: monitoring dominates iteration cost).
    """
    lines: List[str] = [
        "# HELP vfreq_backend_ops_total Kernel-surface operations issued.",
        "# TYPE vfreq_backend_ops_total counter",
    ]
    for op, count in stats.as_dict().items():
        lines.append(_line("vfreq_backend_ops_total", count, op=op))
    return "\n".join(lines) + "\n"


def render_resilience(controller: VirtualFrequencyController) -> str:
    """Render fault-handling counters of a resilient controller.

    One event-counter family from :class:`~repro.core.resilience.
    ResilienceStats`, the degraded-vCPU gauge an operator alerts on,
    and the latest crash/occlusion recovery latency in ticks.
    """
    stats = controller.resilience_stats
    lines: List[str] = [
        "# HELP vfreq_resilience_events_total Fault-handling events.",
        "# TYPE vfreq_resilience_events_total counter",
    ]
    for event, count in stats.as_dict().items():
        if event == "last_recovery_ticks":
            continue
        lines.append(_line("vfreq_resilience_events_total", count, event=event))
    lines += [
        "# HELP vfreq_degraded_vcpus vCPUs currently on fallback capping.",
        "# TYPE vfreq_degraded_vcpus gauge",
        _line("vfreq_degraded_vcpus", controller.degraded_vcpus),
        "# HELP vfreq_recovery_latency_ticks Ticks the last recovered vCPU spent degraded.",
        "# TYPE vfreq_recovery_latency_ticks gauge",
        _line("vfreq_recovery_latency_ticks", stats.last_recovery_ticks),
    ]
    return "\n".join(lines) + "\n"


def render_fault_stats(injector) -> str:
    """Render injected-fault counters of a FaultInjector backend."""
    lines: List[str] = [
        "# HELP vfreq_faults_injected_total Faults fired by the active plan.",
        "# TYPE vfreq_faults_injected_total counter",
    ]
    for kind, count in sorted(injector.injected.items()):
        lines.append(_line("vfreq_faults_injected_total", count, kind=kind))
    return "\n".join(lines) + "\n"


def render_stage_seconds(controller: VirtualFrequencyController) -> str:
    """Render mean per-stage tick cost over the retained reports.

    ``vfreq_iteration_seconds`` is the latest tick only; this family is
    the running average an operator tracks when comparing the scalar
    and vectorised engines (see docs/performance.md), labelled with the
    active engine so a dashboard can split the series on switch-over.
    """
    reports = controller.reports
    lines: List[str] = [
        "# HELP vfreq_stage_seconds Mean wall time per controller stage.",
        "# TYPE vfreq_stage_seconds gauge",
    ]
    n = len(reports)
    engine = controller.config.engine
    for stage in ("monitor", "estimate", "credits", "auction", "distribute", "enforce"):
        mean = (
            sum(getattr(r.timings, stage) for r in reports) / n if n else 0.0
        )
        lines.append(
            _line("vfreq_stage_seconds", mean, stage=stage, engine=engine)
        )
    return "\n".join(lines) + "\n"


def render_invariants(checker) -> str:
    """Render the inline invariant oracle's counters.

    ``vfreq_invariant_violations_total`` is the alert an operator pages
    on — any non-zero value means a paper-equation guarantee was broken
    in production.  Per-invariant labels use the catalogue names from
    :mod:`repro.checking.invariants`.
    """
    lines: List[str] = [
        "# HELP vfreq_invariant_checks_total Tick-level oracle passes run.",
        "# TYPE vfreq_invariant_checks_total counter",
        _line("vfreq_invariant_checks_total", checker.checks_total),
        "# HELP vfreq_invariant_violations_total Broken paper-equation invariants.",
        "# TYPE vfreq_invariant_violations_total counter",
        _line("vfreq_invariant_violations_total", checker.violations_total),
    ]
    for invariant, count in sorted(checker.violations_by_invariant.items()):
        lines.append(
            _line(
                "vfreq_invariant_violations_total", count, invariant=invariant
            )
        )
    return "\n".join(lines) + "\n"


def render_controller(controller: VirtualFrequencyController) -> str:
    """Render the controller's most recent iteration (empty host ok)."""
    if not controller.reports:
        out = render_report(ControllerReport(t=0.0))
    else:
        out = render_report(controller.reports[-1])
    out += render_stage_seconds(controller)
    checker = getattr(controller, "invariant_checker", None)
    if checker is not None:
        out += render_invariants(checker)
    backend = getattr(controller, "backend", None)
    if backend is not None:
        out += render_backend_stats(backend.stats)
        if hasattr(backend, "injected"):
            out += render_fault_stats(backend)
    if controller.resilience is not None:
        out += render_resilience(controller)
    return out


def render_node_manager(manager: "NodeManager") -> str:
    """Render control-plane aggregates: node count, summed stage wall
    time across the latest tick, and the cluster-wide syscall budget."""
    timings = manager.aggregate_timings()
    lines: List[str] = [
        "# HELP vfreq_nodes_managed Nodes under this control plane.",
        "# TYPE vfreq_nodes_managed gauge",
        _line("vfreq_nodes_managed", manager.num_nodes),
        "# HELP vfreq_nodes_iteration_seconds Summed stage wall time, last tick.",
        "# TYPE vfreq_nodes_iteration_seconds gauge",
    ]
    for stage in ("monitor", "estimate", "credits", "auction", "distribute", "enforce"):
        lines.append(
            _line("vfreq_nodes_iteration_seconds", getattr(timings, stage), stage=stage)
        )
    lines += [
        "# HELP vfreq_node_tick_errors_total Ticks that raised, per node.",
        "# TYPE vfreq_node_tick_errors_total counter",
    ]
    for node_id, count in sorted(manager.error_counts.items()):
        lines.append(_line("vfreq_node_tick_errors_total", count, node=node_id))
    lines += [
        "# HELP vfreq_nodes_failed_last_tick Nodes whose latest tick raised.",
        "# TYPE vfreq_nodes_failed_last_tick gauge",
        _line("vfreq_nodes_failed_last_tick", len(manager.last_errors)),
    ]
    checks, violations = manager.invariant_totals()
    if checks:
        lines += [
            "# HELP vfreq_invariant_checks_total Tick-level oracle passes run.",
            "# TYPE vfreq_invariant_checks_total counter",
            _line("vfreq_invariant_checks_total", checks),
            "# HELP vfreq_invariant_violations_total Broken paper-equation invariants.",
            "# TYPE vfreq_invariant_violations_total counter",
            _line("vfreq_invariant_violations_total", violations),
        ]
    return "\n".join(lines) + "\n" + render_backend_stats(manager.backend_stats())
