"""The virtual frequency controller — six stages tied together.

One :meth:`VirtualFrequencyController.tick` is one iteration of the
paper's Fig. 2 loop.  The controller talks to the host exclusively
through one :class:`~repro.core.backend.HostBackend` — the batched
facade over the kernel surfaces (cgroupfs / procfs / sysfs) — plus a
registry of VM guarantees (on a real host: the template's virtual
frequency from the provisioning layer).  It implements the shared
:class:`~repro.core.api.Controller` protocol.

Configuration A (the paper's baseline) is the same object with
``config.control_enabled = False``: the monitoring stage runs — its cost
is part of both configurations, §IV-A2 — but stages 3-6 are skipped and
vCPUs stay uncapped.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cgroups.fs import CgroupFS
from repro.cgroups.procfs import ProcFS
from repro.cgroups.sysfs import CpuFreqSysFS
from repro.core.auction import AuctionOutcome, compute_market, run_auction
from repro.core.backend import HostBackend, vm_component
from repro.core.config import ControllerConfig
from repro.core.credits import CreditLedger, apply_base_capping
from repro.core.distribute import distribute_leftovers
from repro.core.enforcer import MIN_QUOTA_US, Enforcer
from repro.core.estimator import EstimatorDecision, TrendEstimator
from repro.core.monitor import Monitor, VCpuSample
from repro.core.resilience import (
    DegradedVcpu,
    ResiliencePolicy,
    ResilienceStats,
    fallback_caps,
)
from repro.core.soa import VcpuTable, build_decisions, decide_batch, seqsum
from repro.core.soa import gather_free_shares
from repro.core.units import cycles_per_period, guaranteed_cycles, period_us
from repro.obs.logging import get_logger
from repro.sched.fairshare import proportional_share

import numpy as np

log = get_logger("repro.controller")

#: Billing owner assigned to VMs registered without an explicit tenant.
DEFAULT_TENANT = "default"


@dataclass
class StageTimings:
    """Wall-clock seconds spent per stage in one iteration (§IV-A2
    reports 5 ms total, 4 ms of it monitoring, for the C++ original)."""

    monitor: float = 0.0
    estimate: float = 0.0
    credits: float = 0.0
    auction: float = 0.0
    distribute: float = 0.0
    enforce: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.monitor
            + self.estimate
            + self.credits
            + self.auction
            + self.distribute
            + self.enforce
        )


@dataclass
class ControllerReport:
    """Everything one iteration observed and decided."""

    t: float
    samples: List[VCpuSample] = field(default_factory=list)
    decisions: Dict[str, EstimatorDecision] = field(default_factory=dict)
    allocations: Dict[str, float] = field(default_factory=dict)
    market_initial: float = 0.0
    auction: Optional[AuctionOutcome] = None
    freely_distributed: float = 0.0
    wallets: Dict[str, float] = field(default_factory=dict)
    timings: StageTimings = field(default_factory=StageTimings)
    #: Degraded-mode fallback caps applied this tick (path -> cycles);
    #: empty without a resilience policy or when all vCPUs are healthy.
    degraded: Dict[str, float] = field(default_factory=dict)
    #: Stage-5 free-distribution shares granted this tick (path ->
    #: cycles > 0).  Part of the cross-engine comparison surface and
    #: the decision ledger's per-write provenance.
    free_shares: Dict[str, float] = field(default_factory=dict)

    def vfreq_by_vm(self) -> Dict[str, float]:
        """Average estimated virtual frequency per VM (for Figs. 6-9)."""
        sums: Dict[str, List[float]] = {}
        for s in self.samples:
            sums.setdefault(s.vm_name, []).append(s.vfreq_mhz)
        return {vm: sum(v) / len(v) for vm, v in sums.items()}


class VirtualFrequencyController:
    """Per-node controller instance."""

    def __init__(
        self,
        fs,
        procfs: Optional[ProcFS] = None,
        sysfs: Optional[CpuFreqSysFS] = None,
        *,
        num_cpus: int,
        fmax_mhz: float,
        config: Optional[ControllerConfig] = None,
        machine_slice: str = "/machine.slice",
        backend: Optional[HostBackend] = None,
        resilience: Optional[ResiliencePolicy] = None,
    ) -> None:
        self.config = config or ControllerConfig.paper_evaluation()
        if backend is None:
            if isinstance(fs, HostBackend):
                backend = fs
            else:
                backend = HostBackend(
                    fs, procfs, sysfs, machine_slice=machine_slice
                )
        self.backend = backend
        self.fs = backend.fs
        self.machine_slice = backend.machine_slice
        self.num_cpus = num_cpus
        self.fmax_mhz = fmax_mhz
        #: Degraded-mode defenses; ``None`` keeps the seed fail-fast
        #: behaviour (faults at the backend seam raise out of tick()).
        self.resilience = (
            resilience if resilience is not None else self.config.resilience
        )
        self.resilience_stats = ResilienceStats()
        if self.resilience is not None:
            backend.tolerate_errors = True
        self.monitor = Monitor(
            backend,
            period_s=self.config.period_s,
            stale_max_age=(
                self.resilience.stale_sample_max_age if self.resilience else 0
            ),
        )
        self.estimator = TrendEstimator(self.config)
        self.ledger = CreditLedger(self.config)
        self.enforcer = Enforcer(backend, self.config)
        self._vm_vfreq: Dict[str, float] = {}
        #: Billing owner per VM.  Purely descriptive metadata: no stage
        #: reads it, so tenancy can never perturb allocation decisions.
        self._vm_tenant: Dict[str, str] = {}
        #: Eq. 2 guarantees cached per VM at registration — the formula
        #: is pure in ``period_s * vfreq / fmax``, all fixed between
        #: (re-)registrations, so stage 3 never recomputes it per sample.
        self._guarantee: Dict[str, float] = {}
        #: Structure-of-arrays state for the vectorized/bulk engines
        #: (None on the scalar oracle path).
        self._table: Optional[VcpuTable] = (
            VcpuTable(self.config.history_len)
            if self.config.engine in ("vectorized", "bulk")
            else None
        )
        #: The bulk engine drives stages 1/6 through the backend's
        #: array interface and stage 2 through the dirty-set cache.
        self._bulk = self.config.engine == "bulk"
        #: Bumped on every registry mutation; part of the bulk view
        #: cache key (a stable backend batch + an unchanged registry
        #: means the gathered TickView can be reused as-is).
        self._registry_version = 0
        self._bulk_cache = None
        self._cap_epoch_seen = backend.cap_epoch
        self._current_cap: Dict[str, float] = {}
        self._degraded: Dict[str, DegradedVcpu] = {}
        self._tick_count = 0
        self.reports: List[ControllerReport] = []
        self.keep_reports: bool = True
        #: Inline paper-equation oracle (``config.check_invariants``);
        #: ``None`` when disabled.  Import deferred: repro.checking
        #: imports this module.
        self.invariant_checker = None
        if self.config.check_invariants:
            from repro.checking.invariants import InvariantChecker

            self.invariant_checker = InvariantChecker(self)
        if self.config.snapshot_path and os.path.exists(self.config.snapshot_path):
            # Crash recovery: a restarting controller resumes from the
            # last periodic snapshot instead of forgetting every wallet
            # and history (import deferred: snapshot imports this module).
            from repro.core.snapshot import from_json

            with open(self.config.snapshot_path) as fh:
                from_json(self, fh.read())
            log.info("restored controller state from snapshot %s",
                     self.config.snapshot_path)
        #: Observability hub (spans + ledger + flight recorder); ``None``
        #: keeps the tick path at one attribute check.  Attach later at
        #: runtime with ``Observability.attach(controller, cfg)`` too.
        self.obs = None
        if self.config.observability is not None:
            from repro.obs.hub import Observability

            Observability.attach(self, self.config.observability)
        #: Billing engine (``repro.billing.BillingEngine``); ``None``
        #: keeps the tick path at one attribute check, and the hard
        #: transparency contract is that attaching one never changes a
        #: report or ledger byte.
        self.billing = None
        #: SLO/alerting plane (``repro.obs.slo.SLOPlane``); same deal:
        #: one attribute check when absent, pure observer when present.
        #: Attach declaratively via ``ObsConfig.slo`` or at runtime with
        #: ``SLOPlane.attach(controller)``.
        self.slo = None
        if (
            self.config.observability is not None
            and self.config.observability.slo is not None
        ):
            from repro.obs.slo import SLOPlane

            SLOPlane.attach(self, self.config.observability.slo)

    @property
    def period_s(self) -> float:
        """Control-loop period (the shared Controller protocol surface)."""
        return self.config.period_s

    # -- VM registry ------------------------------------------------------------

    def register_vm(
        self,
        vm_name: str,
        vfreq_mhz: float,
        *,
        tenant: Optional[str] = None,
    ) -> None:
        """Declare a hosted VM's guaranteed virtual frequency.

        ``tenant`` names the billing owner; ``None`` preserves an
        existing assignment (so ``set_vfreq`` re-registration keeps it)
        and defaults fresh VMs to :data:`DEFAULT_TENANT`.
        """
        if vfreq_mhz <= 0:
            raise ValueError("vfreq must be positive")
        if vfreq_mhz > self.fmax_mhz:
            raise ValueError(
                f"guarantee {vfreq_mhz} MHz exceeds host F_MAX {self.fmax_mhz} MHz"
            )
        self._vm_vfreq[vm_name] = vfreq_mhz
        if tenant is not None:
            self._vm_tenant[vm_name] = tenant
        elif vm_name not in self._vm_tenant:
            self._vm_tenant[vm_name] = DEFAULT_TENANT
        self._guarantee[vm_name] = guaranteed_cycles(
            self.config.period_s, vfreq_mhz, self.fmax_mhz
        )
        if self._table is not None:
            # A re-registration (set_vfreq) must refresh live slots too.
            self._table.set_vm_guarantee(vm_name, self._guarantee[vm_name])
        self._registry_version += 1
        # VM churn invalidates the backend's cached cgroup topology.
        self.backend.invalidate()

    def set_vfreq(self, vm_name: str, vfreq_mhz: float) -> None:
        """Reconfigure a running VM's guaranteed virtual frequency.

        This is the "dynamic" in the paper's title taken literally: the
        customer can re-negotiate QoS without restarting the VM — the new
        ``C_i`` (Eq. 2) takes effect at the next iteration.
        """
        if vm_name not in self._vm_vfreq:
            raise KeyError(f"VM not registered: {vm_name}")
        self.register_vm(vm_name, vfreq_mhz)

    def unregister_vm(self, vm_name: str) -> None:
        self._vm_vfreq.pop(vm_name, None)
        self._vm_tenant.pop(vm_name, None)
        self._guarantee.pop(vm_name, None)
        if self._table is not None:
            self._table.release_vm(vm_name)
        self.ledger.forget(vm_name)
        # Match on the parsed VM path component, not a substring — a
        # substring test would let "vm-1" also claim "foo/vm-1/..."
        # nested names.
        matches = [
            p
            for p in self._current_cap
            if vm_component(p, self.machine_slice) == vm_name
        ]
        for path in matches:
            self._current_cap.pop(path, None)
            self.estimator.forget(path)
            self.monitor.forget(path)
            self.backend.forget_vcpu(path)
        for path in list(self._degraded):
            if vm_component(path, self.machine_slice) == vm_name:
                del self._degraded[path]
                self.monitor.forget(path)
        self._registry_version += 1
        self.backend.invalidate()

    def reset(self) -> None:
        """Drop all per-VM dynamic state, keeping configuration.

        This is the precondition for a safe snapshot restore onto a
        non-fresh instance: wallets, histories, caps, usage baselines
        and degraded-mode tracking are cleared (iteration reports are
        operational history and are kept).
        """
        for path in list(self._current_cap):
            self.backend.forget_vcpu(path)
        self._vm_vfreq.clear()
        self._vm_tenant.clear()
        self._guarantee.clear()
        if self._table is not None:
            self._table.clear()
        self._current_cap.clear()
        self._degraded.clear()
        self.ledger.clear()
        self.estimator.reset()
        self.monitor.reset()
        self._registry_version += 1
        self._bulk_cache = None
        self.backend.invalidate()
        if self.invariant_checker is not None:
            self.invariant_checker.resync()

    def guaranteed_cycles_of(self, vm_name: str) -> float:
        """``C_i`` for one vCPU of the named VM (Eq. 2, cached)."""
        return self._guarantee[vm_name]

    # -- engine-agnostic history access (snapshot schema) -----------------------

    def histories(self) -> Dict[str, List[float]]:
        """Per-vCPU consumption windows, oldest first, keyed by path."""
        if self._table is not None:
            return self._table.histories()
        return {
            path: list(hist)
            for path, hist in self.estimator._history.items()
        }

    def load_history(self, path: str, values: List[float]) -> None:
        """Replace one vCPU's window (snapshot restore), either engine."""
        if self._table is not None:
            vm_name = vm_component(path, self.machine_slice)
            if vm_name is None or vm_name not in self._guarantee:
                raise KeyError(f"history for unregistered VM path: {path}")
            self._table.ensure_slot(
                path, vm_name, self._guarantee[vm_name],
                self._current_cap.get(path),
            )
            self._table.load_history(path, values)
        else:
            for value in values:
                self.estimator.observe(path, float(value))

    # -- the control loop ----------------------------------------------------------

    def tick(self, t: float) -> ControllerReport:
        """One full iteration of the feedback loop at simulation time ``t``.

        Dispatches to the engine selected by ``config.engine``: the
        structure-of-arrays fast path (default) or the per-vCPU scalar
        oracle.  Both produce bit-identical reports.
        """
        if self.obs is None:
            if self._table is not None:
                return self._tick_vectorized(t)
            return self._tick_scalar(t)
        try:
            if self._table is not None:
                return self._tick_vectorized(t)
            return self._tick_scalar(t)
        except Exception as exc:
            from repro.checking.invariants import InvariantViolationError

            if not isinstance(exc, InvariantViolationError):
                # Violations dump in _finish (the failing report is in
                # the ring by then); everything else — e.g. an injected
                # ControllerCrash — dumps here on the way out.
                self.obs.on_tick_error(self, exc, self._tick_count)
            raise

    def _tick_scalar(self, t: float) -> ControllerReport:
        """The per-vCPU reference implementation (``engine="scalar"``)."""
        cfg = self.config
        p_us = period_us(cfg.period_s)
        report = ControllerReport(t=t)

        # Stage 1 — monitoring.
        t0 = time.perf_counter()
        samples = [s for s in self.monitor.sample() if s.vm_name in self._vm_vfreq]
        if self.resilience is not None:
            self._update_health(samples)
        report.samples = samples
        report.timings.monitor = time.perf_counter() - t0

        # Stage 2 — estimation (history always updated, even in config A,
        # so enabling control mid-run has warm state).
        t0 = time.perf_counter()
        for s in samples:
            self.estimator.observe(s.cgroup_path, s.consumed_cycles)
        if not cfg.control_enabled:
            report.timings.estimate = time.perf_counter() - t0
            self._finish(report)
            return report
        decisions: Dict[str, EstimatorDecision] = {}
        for s in samples:
            cap = self._current_cap.get(s.cgroup_path, p_us)
            decisions[s.cgroup_path] = self.estimator.decide(s.cgroup_path, cap)
        report.decisions = decisions
        report.timings.estimate = time.perf_counter() - t0

        # Stage 3 — credits (Eq. 4) and base capping (Eq. 5).
        t0 = time.perf_counter()
        consumed_by_vm: Dict[str, List[float]] = {}
        vm_of: Dict[str, str] = {}
        guarantees: Dict[str, float] = {}
        for s in samples:
            consumed_by_vm.setdefault(s.vm_name, []).append(s.consumed_cycles)
            vm_of[s.cgroup_path] = s.vm_name
            guarantees[s.cgroup_path] = self.guaranteed_cycles_of(s.vm_name)
        for vm_name, consumed in consumed_by_vm.items():
            self.ledger.accrue(
                vm_name, consumed, self.guaranteed_cycles_of(vm_name)
            )
        estimates = {path: d.estimate_cycles for path, d in decisions.items()}
        base = apply_base_capping(estimates, guarantees)
        allocations = {path: b.cycles for path, b in base.items()}
        if cfg.reserve_guarantee:
            # Extension: pin the floor at C_i so a waking vCPU never
            # ramps from below its guarantee (waste-for-SLA trade).
            for path in allocations:
                allocations[path] = max(allocations[path], guarantees[path])
        report.timings.credits = time.perf_counter() - t0

        # Stage 4 — auction (Eq. 6 + Algorithm 1).
        t0 = time.perf_counter()
        total_cycles = cycles_per_period(cfg.period_s, self.num_cpus)
        market = compute_market(total_cycles, allocations)
        report.market_initial = market
        residual = {
            path: min(estimates[path], p_us) - allocations[path]
            for path in allocations
            if estimates[path] > allocations[path]
        }
        window = cfg.auction_window_frac * p_us
        priorities = (
            {vm: self._vm_vfreq[vm] for vm in consumed_by_vm}
            if cfg.auction_priority == "frequency"
            else None
        )
        outcome = run_auction(
            market, residual, vm_of, self.ledger, window, priorities=priorities
        )
        for path, bought in outcome.purchased.items():
            allocations[path] += bought
            residual[path] -= bought
        report.auction = outcome
        report.timings.auction = time.perf_counter() - t0

        # Stage 5 — free distribution of what the auction could not sell.
        t0 = time.perf_counter()
        leftovers = distribute_leftovers(outcome.market_left, residual)
        for path, extra in leftovers.items():
            allocations[path] += extra
        report.freely_distributed = sum(leftovers.values())
        report.free_shares = leftovers
        report.timings.distribute = time.perf_counter() - t0

        # Stage 6 — apply the capping.
        t0 = time.perf_counter()
        for path in allocations:
            allocations[path] = min(allocations[path], p_us)
        if self.resilience is not None and self._degraded:
            overrides = fallback_caps(
                self.resilience, self._degraded, self._vm_vfreq,
                self._current_cap, self.guaranteed_cycles_of, p_us,
            )
            allocations.update(overrides)
            report.degraded.update(overrides)
        self.enforcer.apply(allocations)
        if self.resilience is not None:
            self._retry_failed_writes(allocations)
        self._current_cap.update(allocations)
        report.allocations = allocations
        report.timings.enforce = time.perf_counter() - t0

        self._finish(report)
        return report

    def _tick_vectorized(self, t: float) -> ControllerReport:
        """Structure-of-arrays fast path (``engine="vectorized"``).

        One iteration over NumPy columns instead of per-vCPU dict
        loops; see :mod:`repro.core.soa` for why every array is
        gathered in sample order and how reductions keep the scalar
        engine's operation order (and therefore its exact bits).
        """
        cfg = self.config
        table = self._table
        p_us = period_us(cfg.period_s)
        report = ControllerReport(t=t)

        # Stage 1 — monitoring; samples land directly in table slots.
        # The bulk engine takes the backend's array path (stale-sample
        # carry-forward is inherently per-path, so an active resilience
        # policy keeps the list-based monitor).
        t0 = time.perf_counter()
        if self._bulk and self.resilience is None:
            samples, view = self._bulk_sample(table)
        else:
            samples, view = self.monitor.sample_into(
                table, self._vm_vfreq, self._guarantee, self._current_cap
            )
        if self.resilience is not None:
            self._update_health(samples)
        report.samples = samples
        report.timings.monitor = time.perf_counter() - t0

        # Stage 2 — estimation (histories always updated, as in config A).
        t0 = time.perf_counter()
        table.observe(view.rows, view.consumed)
        if not cfg.control_enabled:
            report.timings.estimate = time.perf_counter() - t0
            self._finish(report)
            return report
        estimates, trends, cases = decide_batch(
            table, view, cfg, use_cache=self._bulk
        )
        if self.keep_reports:
            # The per-path decision objects are report detail only; the
            # stages below consume the arrays directly.
            report.decisions = build_decisions(
                view.paths, estimates, trends, cases
            )
        report.timings.estimate = time.perf_counter() - t0

        # Stage 3 — credits (Eq. 4) and base capping (Eq. 5).
        t0 = time.perf_counter()
        guarantees = table.guarantee[view.rows]
        vm_ids = table.vm_ids[view.rows]
        # Eq. 4 per-VM segment reduction: bincount adds contributions in
        # sample order, exactly like the scalar per-VM sums (the masked
        # zeros are exact no-ops).
        contrib = np.where(view.consumed < guarantees,
                           guarantees - view.consumed, 0.0)
        gains = np.bincount(vm_ids, weights=contrib,
                            minlength=table.num_vm_ids)
        gains_list = gains.tolist()
        self.ledger.apply_gains(
            (vm, gains_list[vid]) for vm, vid in view.vm_order
        )
        alloc = np.minimum(estimates, guarantees)  # Eq. 5
        if cfg.reserve_guarantee:
            alloc = np.maximum(alloc, guarantees)
        report.timings.credits = time.perf_counter() - t0

        # Stage 4 — auction (Eq. 6 + Algorithm 1, shared heap version).
        t0 = time.perf_counter()
        total_cycles = cycles_per_period(cfg.period_s, self.num_cpus)
        market = max(0.0, total_cycles - seqsum(alloc))
        report.market_initial = market
        residual = np.minimum(estimates, p_us) - alloc
        if market > 0 and not self.ledger.any_funded():
            # Nobody can pay: run_auction would return empty-handed
            # after scanning every buyer, so synthesise its exact result
            # (rounds included) without building the per-path dicts.
            outcome = AuctionOutcome(market_left=market)
            outcome.rounds = 1 if bool(np.any(residual > 1e-9)) else 0
        else:
            buyers = np.flatnonzero(estimates > alloc)
            residual_list = residual.tolist()
            demands = {}
            vm_of = {}
            for i in buyers.tolist():
                path = view.paths[i]
                demands[path] = residual_list[i]
                vm_of[path] = view.vms[i]
            priorities = (
                {vm: self._vm_vfreq[vm] for vm, _ in view.vm_order}
                if cfg.auction_priority == "frequency"
                else None
            )
            window = cfg.auction_window_frac * p_us
            outcome = run_auction(
                market, demands, vm_of, self.ledger, window,
                priorities=priorities,
            )
            for path, bought in outcome.purchased.items():
                i = view.pos[path]
                alloc[i] += bought
                residual[i] -= bought
        report.auction = outcome
        report.timings.auction = time.perf_counter() - t0

        # Stage 5 — free distribution of what the auction could not sell.
        t0 = time.perf_counter()
        if outcome.market_left > 0:
            needy = np.flatnonzero(residual > 1e-9)
        else:
            needy = np.empty(0, dtype=np.intp)
        if needy.size:
            shares = proportional_share(outcome.market_left, residual[needy])
            given = shares > 0
            alloc[needy[given]] += shares[given]
            report.freely_distributed = seqsum(shares[given])
            report.free_shares = gather_free_shares(view.paths, needy, shares)
        report.timings.distribute = time.perf_counter() - t0

        # Stage 6 — apply the capping.
        t0 = time.perf_counter()
        np.minimum(alloc, p_us, out=alloc)
        allocations = dict(zip(view.paths, alloc.tolist()))
        overrides: Optional[Dict[str, float]] = None
        if self.resilience is not None and self._degraded:
            overrides = fallback_caps(
                self.resilience, self._degraded, self._vm_vfreq,
                self._current_cap, self.guaranteed_cycles_of, p_us,
            )
            allocations.update(overrides)
            report.degraded.update(overrides)
            for path, cycles in overrides.items():
                table.set_cap_path(path, cycles)
        if self._bulk:
            self._bulk_enforce(table, view, alloc, overrides)
        else:
            self.enforcer.apply(allocations)
        if self.resilience is not None:
            self._retry_failed_writes(allocations)
        self._current_cap.update(allocations)
        table.set_caps(view.rows, alloc)
        report.allocations = allocations
        report.timings.enforce = time.perf_counter() - t0

        self._finish(report)
        return report

    # -- bulk-array engine helpers ------------------------------------------------

    def _need_samples(self) -> bool:
        """Whether anything downstream consumes ``report.samples``."""
        return (
            self.keep_reports
            or self.obs is not None
            or self.invariant_checker is not None
        )

    def _bulk_sample(self, table: VcpuTable):
        """Stage 1 through :meth:`HostBackend.sample_all`.

        While the backend batch keeps the same slot order (``paths`` is
        the identical list object) and the VM registry is unchanged,
        the gathered :class:`TickView` is reused with only its
        ``consumed`` column swapped — the steady-state tick carries no
        per-vCPU Python work at all.  Per-sample objects are only
        materialised when reports, observability or the inline oracle
        actually consume them.
        """
        batch = self.backend.sample_all(self.config.period_s)
        cache = self._bulk_cache
        if (
            cache is not None
            and cache[0] is batch.paths
            and cache[1] == self._registry_version
        ):
            keep, view = cache[2], cache[3]
            view.consumed = (
                batch.consumed if keep is None else batch.consumed[keep]
            )
            samples = batch.to_samples(keep) if self._need_samples() else []
            return samples, view
        # View (re)build: same filter + gather as the list-based path.
        samples_all = batch.to_samples()
        registered = self._vm_vfreq
        keep_idx = [
            i for i, s in enumerate(samples_all) if s.vm_name in registered
        ]
        if len(keep_idx) == len(samples_all):
            samples = samples_all
            keep = None
        else:
            samples = [samples_all[i] for i in keep_idx]
            keep = np.asarray(keep_idx, dtype=np.intp)
        view = table.ingest(
            samples, self._guarantee.__getitem__, self._current_cap
        )
        self._bulk_cache = (batch.paths, self._registry_version, keep, view)
        return samples, view

    def _bulk_enforce(
        self,
        table: VcpuTable,
        view,
        alloc: np.ndarray,
        overrides: Optional[Dict[str, float]],
    ) -> None:
        """Stage 6 through :meth:`HostBackend.apply_caps`.

        Quotas are scaled exactly like :meth:`Enforcer.quota_us`
        (multiply before divide, banker's rounding, kernel floor), and
        only rows whose quota differs from the one known to be in
        force are handed to the backend.  A moved backend
        ``cap_epoch`` (out-of-band cap invalidation) marks every row
        dirty; failed or vanished writes reset to "unknown" so they
        are rewritten next tick.
        """
        cfg = self.config
        backend = self.backend
        p_us = period_us(cfg.period_s)
        enf = float(cfg.enforcement_period_us)
        quota_f = np.rint(alloc * enf / p_us)
        np.maximum(quota_f, MIN_QUOTA_US, out=quota_f)
        quota = quota_f.astype(np.int64)
        rows = view.rows
        if backend.cap_epoch != self._cap_epoch_seen:
            dirty_view = np.ones(rows.size, dtype=bool)
            self._cap_epoch_seen = backend.cap_epoch
        else:
            dirty_view = table.last_quota[rows] != quota
        paths = view.paths
        dirty = dirty_view
        quota_all = quota
        o_paths: List[str] = []
        if overrides:
            o_paths = list(overrides)
            o_quota = np.fromiter(
                (self.enforcer.quota_us(c) for c in overrides.values()),
                dtype=np.int64,
                count=len(o_paths),
            )
            paths = paths + o_paths
            quota_all = np.concatenate([quota, o_quota])
            dirty = np.concatenate(
                [dirty_view, np.ones(len(o_paths), dtype=bool)]
            )
        written = backend.apply_caps(
            paths, quota_all, dirty, cfg.enforcement_period_us
        )
        # Commit what actually landed; failed or vanished rows become
        # unknown (-1) so the next tick rewrites them unconditionally.
        lq = table.last_quota
        for i in np.flatnonzero(dirty_view).tolist():
            path = view.paths[i]
            lq[rows[i]] = quota[i] if path in written else -1
        for j, path in enumerate(o_paths):
            slot = table.slot_of(path)
            if slot is not None:
                lq[slot] = int(o_quota[j]) if path in written else -1

    # -- degraded-mode resilience -------------------------------------------------

    def _update_health(self, samples: List[VCpuSample]) -> None:
        """Track per-vCPU observability; enter/leave degraded mode.

        Called once per tick, right after monitoring, only when a
        :class:`ResiliencePolicy` is active.
        """
        policy = self.resilience
        stats = self.resilience_stats
        stats.stale_samples_used += self.monitor.last_carried
        missing = self.monitor.missing_ages()
        if (
            not samples
            and self._vm_vfreq
            and missing
            and all(age > 0 for age in missing.values())
        ):
            stats.monitor_failures += 1
        # Recoveries first: a path observed again this tick has no
        # missing-age entry any more.
        for path in list(self._degraded):
            if path not in missing:
                rec = self._degraded.pop(path)
                if self._table is not None:
                    self._table.set_degraded(path, False)
                stats.recoveries += 1
                stats.last_recovery_ticks = self._tick_count - rec.since_tick
                log.info(
                    "vcpu recovered after %d tick(s) degraded",
                    stats.last_recovery_ticks,
                    extra={"path": path, "tick": self._tick_count},
                )
        for path, age in missing.items():
            if age < policy.degraded_after_ticks or path in self._degraded:
                continue
            vm_name = vm_component(path, self.machine_slice)
            if vm_name not in self._vm_vfreq:
                continue
            self._degraded[path] = DegradedVcpu(
                cgroup_path=path, vm_name=vm_name, since_tick=self._tick_count
            )
            if self._table is not None:
                self._table.set_degraded(path, True)
            stats.degraded_transitions += 1
            log.warning(
                "vcpu unobservable for %d tick(s): entering degraded mode",
                age,
                extra={"path": path, "vm": vm_name, "tick": self._tick_count},
            )
        stats.degraded_vcpu_ticks += len(self._degraded)

    def _retry_failed_writes(self, allocations: Dict[str, float]) -> None:
        """Bounded retry-with-backoff for transiently failed cap writes."""
        policy = self.resilience
        stats = self.resilience_stats
        failed = dict(self.backend.last_write_errors)
        for attempt in range(1, policy.write_retries + 1):
            if not failed:
                return
            stats.write_retries += len(failed)
            if policy.write_backoff_s:
                time.sleep(policy.write_backoff_s * attempt)
            retry = {p: allocations[p] for p in failed if p in allocations}
            self.enforcer.apply(retry)
            failed = dict(self.backend.last_write_errors)
        stats.write_failures += len(failed)
        if failed:
            log.warning(
                "%d cap write(s) still failing after %d retries",
                len(failed), policy.write_retries,
                extra={"paths": sorted(failed), "tick": self._tick_count},
            )

    @property
    def degraded_vcpus(self) -> int:
        """vCPUs currently held at their degraded-mode fallback cap."""
        return len(self._degraded)

    def _finish(self, report: ControllerReport) -> None:
        report.wallets = self.ledger.wallets()
        if self.obs is not None:
            # Before the oracle check, so a violating tick is already in
            # the flight ring (and ledger) when the dump fires.
            self.obs.on_tick(self, report, self._tick_count)
        if self.billing is not None:
            # After obs, so the ledger entry the oracle audits against
            # exists before the tick is metered.
            self.billing.on_tick(self, report, self._tick_count)
        if self.slo is not None:
            # After billing, so this tick's credit dollars are already
            # metered when the credit-burn SLO ingests them.
            self.slo.on_tick(self, report, self._tick_count)
        if self.invariant_checker is not None:
            violations = self.invariant_checker.check(report)
            if violations:
                from repro.checking.invariants import InvariantViolationError

                if self.obs is not None:
                    self.obs.on_violation(
                        self, report, violations, self._tick_count
                    )
                raise InvariantViolationError(violations)
        if self.keep_reports:
            self.reports.append(report)
        self._tick_count += 1
        cfg = self.config
        if cfg.snapshot_path and self._tick_count % cfg.snapshot_every_ticks == 0:
            from repro.core.snapshot import to_json

            with open(cfg.snapshot_path, "w") as fh:
                fh.write(to_json(self))

    # -- reporting helpers ----------------------------------------------------------

    def mean_iteration_seconds(self) -> float:
        """Average wall-clock cost of an iteration (§IV-A2 overhead)."""
        if not self.reports:
            return 0.0
        return sum(r.timings.total for r in self.reports) / len(self.reports)
