"""Batched host-backend I/O layer — all kernel-surface traffic for one node.

The paper reports that ~4 ms of the 5 ms iteration cost is *monitoring*
(§IV-A2): per-vCPU ``cpu.stat``, ``/proc/<tid>/stat`` and
``scaling_cur_freq`` reads dominate the loop.  The seed port repeated
that pattern — one filesystem call per file per tick, a fresh directory
walk every iteration, and an unconditional ``cpu.max`` write per vCPU.

:class:`HostBackend` owns every read and write the controller issues
against one node's kernel surfaces and batches them:

* :meth:`read_vcpu_samples` — a single-pass cgroup scan backed by a
  cached tid→cgroup map.  After the first full walk, a tick costs one
  ``readdir`` of the machine slice (the churn guard), one ``cpu.stat``
  read and one ``/proc/<tid>/stat`` read per vCPU, and one
  ``scaling_cur_freq`` read per *distinct core* — ``cgroup.threads``
  is never re-read while the topology is stable.  The map is
  invalidated on VM churn (register/unregister, a changed VM set, or a
  teardown race observed mid-scan).
* :meth:`write_caps` — coalesced ``cpu.max`` (v1: quota/period) writes
  that skip values already in place, so a converged controller writes
  nothing at all.
* :meth:`sample_all` / :meth:`apply_caps` — the bulk-array spelling of
  the same two passes: one :class:`SampleBatch` of NumPy columns in a
  stable slot order (the cached topology order, shared with
  :class:`~repro.core.soa.VcpuTable`), and a cap write pass driven by a
  dirty mask so only changed quotas touch the kernel.  The fast path
  reads the cgroup/proc/sysfs surfaces through cached per-slot handles
  — the simulated equivalent of an io_uring-batched read — with no
  per-vCPU string parse; it degrades to the list-based scan whenever
  the topology is unknown, the cgroup hierarchy is v1, or a fault
  plan is armed (faults inject at the per-file seam, which the handle
  path would bypass).
* per-batch wall-time and syscall-count stats
  (:attr:`HostBackend.stats`, :attr:`last_sample_batch`,
  :attr:`last_write_batch`) so the saving is measurable, not asserted.

``batched=False`` reproduces the seed access pattern exactly (fresh
walk, per-vCPU ``cgroup.threads`` read, unconditional writes) with the
same counters — the A/B used by ``benchmarks/bench_backend_batching.py``
and the backend unit tests.

The sample *values* are bit-identical in both modes: caching only
removes re-reads of immutable data (a vCPU cgroup's single KVM tid) and
duplicate reads of the same core's frequency within one batch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.cgroups.cpu import parse_cpu_stat
from repro.cgroups.fs import CgroupFS, CgroupVersion
from repro.cgroups.procfs import ProcFS, parse_stat_line
from repro.cgroups.sysfs import CpuFreqSysFS
from repro.core.units import period_us

#: Default KVM/libvirt machine slice (mirrors repro.hw.node.MACHINE_SLICE
#: without importing the hw layer from core).
DEFAULT_MACHINE_SLICE = "/machine.slice"


@dataclass(frozen=True)
class VCpuSample:
    """Stage-1 output for one vCPU at one controller iteration."""

    vm_name: str
    vcpu_index: int
    cgroup_path: str
    tid: int
    consumed_cycles: float  # u_{i,j,t}: µs of CPU in the last period
    core: int
    core_freq_mhz: float
    vfreq_mhz: float  # estimated virtual frequency


@dataclass(frozen=True)
class VCpuSlot:
    """One entry of the cached tid→cgroup topology map."""

    vm_name: str
    vcpu_index: int
    cgroup_path: str
    tid: int


@dataclass
class SampleBatch:
    """One monitoring pass as parallel NumPy columns (bulk stage 1).

    Rows follow the backend's cached topology order and stay stable
    tick over tick while the VM set is unchanged — ``paths`` is the
    *same list object* across such ticks, so callers may key caches on
    its identity.  Values are bit-identical to the
    :class:`VCpuSample` list of :meth:`HostBackend.read_vcpu_samples`
    on the same node state (proved by the bulk parity tests).
    """

    period_s: float
    paths: List[str]
    vm_names: List[str]
    vcpu_indices: np.ndarray  # int64
    tids: np.ndarray  # int64
    usage_usec: np.ndarray  # float64, absolute counters
    consumed: np.ndarray  # float64, u_{i,j,t} µs over the period
    cores: np.ndarray  # int64
    core_freq_mhz: np.ndarray  # float64
    vfreq_mhz: np.ndarray  # float64

    def __len__(self) -> int:
        return len(self.paths)

    def to_samples(self, indices: Optional[Sequence[int]] = None) -> List[VCpuSample]:
        """Materialise (a subset of) the batch as VCpuSample objects."""
        rows = range(len(self.paths)) if indices is None else indices
        return [
            VCpuSample(
                vm_name=self.vm_names[i],
                vcpu_index=int(self.vcpu_indices[i]),
                cgroup_path=self.paths[i],
                tid=int(self.tids[i]),
                consumed_cycles=float(self.consumed[i]),
                core=int(self.cores[i]),
                core_freq_mhz=float(self.core_freq_mhz[i]),
                vfreq_mhz=float(self.vfreq_mhz[i]),
            )
            for i in rows
        ]

    @classmethod
    def from_samples(
        cls, samples: Sequence[VCpuSample], period_s: float
    ) -> "SampleBatch":
        n = len(samples)
        return cls(
            period_s=period_s,
            paths=[s.cgroup_path for s in samples],
            vm_names=[s.vm_name for s in samples],
            vcpu_indices=np.fromiter(
                (s.vcpu_index for s in samples), dtype=np.int64, count=n
            ),
            tids=np.fromiter((s.tid for s in samples), dtype=np.int64, count=n),
            usage_usec=np.zeros(n, dtype=np.float64),
            consumed=np.fromiter(
                (s.consumed_cycles for s in samples), dtype=np.float64, count=n
            ),
            cores=np.fromiter((s.core for s in samples), dtype=np.int64, count=n),
            core_freq_mhz=np.fromiter(
                (s.core_freq_mhz for s in samples), dtype=np.float64, count=n
            ),
            vfreq_mhz=np.fromiter(
                (s.vfreq_mhz for s in samples), dtype=np.float64, count=n
            ),
        )


@dataclass
class BackendStats:
    """Cumulative kernel-surface operation counters for one backend.

    Each field counts one class of would-be syscalls on a real host:
    a cgroupfs ``read()``/``write()``/``readdir()``, a ``/proc`` stat
    read, or a cpufreq sysfs read.  ``cap_writes_skipped`` counts
    ``cpu.max`` writes elided because the value was already in place;
    ``topology_rescans`` counts full directory walks.
    """

    fs_reads: int = 0
    fs_writes: int = 0
    fs_listdirs: int = 0
    proc_reads: int = 0
    sysfs_reads: int = 0
    cap_writes_skipped: int = 0
    topology_rescans: int = 0
    #: vCPUs skipped mid-scan (gone cgroup, dead tid, or — in tolerant
    #: mode — a transient read error on one of its files).
    vcpu_skips: int = 0
    #: Whole VM directories that vanished between readdir and descent.
    vm_skips: int = 0
    #: Transient read errors absorbed in tolerant mode (EIO and kin).
    read_errors: int = 0
    #: ``cpu.max`` writes that failed with a non-ENOENT error
    #: (recorded in :attr:`HostBackend.last_write_errors`).
    write_errors: int = 0

    @property
    def total_ops(self) -> int:
        """All filesystem operations actually issued (skips excluded)."""
        return (
            self.fs_reads
            + self.fs_writes
            + self.fs_listdirs
            + self.proc_reads
            + self.sysfs_reads
        )

    def copy(self) -> "BackendStats":
        return BackendStats(**self.as_dict())

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __sub__(self, other: "BackendStats") -> "BackendStats":
        return BackendStats(
            **{
                f.name: getattr(self, f.name) - getattr(other, f.name)
                for f in fields(self)
            }
        )

    def __add__(self, other: "BackendStats") -> "BackendStats":
        return BackendStats(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )


@dataclass(frozen=True)
class BatchStats:
    """Wall time and operation delta of one batched backend call."""

    seconds: float
    ops: BackendStats


def vm_component(path: str, machine_slice: str = DEFAULT_MACHINE_SLICE) -> Optional[str]:
    """The VM directory component of a vCPU cgroup path.

    ``/machine.slice/vm-1/vcpu0`` → ``vm-1``;
    ``/machine.slice/foo/vm-1/vcpu0`` → ``foo`` (NOT ``vm-1`` — exact
    component matching is what fixes the old substring-based
    ``unregister_vm``).  Returns ``None`` for paths outside the slice.
    """
    prefix = machine_slice.rstrip("/") + "/"
    if not path.startswith(prefix):
        return None
    rest = path[len(prefix):]
    return rest.split("/", 1)[0] if rest else None


class HostBackend:
    """Batched, counted access to one node's kernel surfaces.

    ``procfs``/``sysfs`` may be ``None`` for write-only users (the
    enforcer standalone); monitoring through such a backend raises.
    """

    def __init__(
        self,
        fs: CgroupFS,
        procfs: Optional[ProcFS] = None,
        sysfs: Optional[CpuFreqSysFS] = None,
        *,
        machine_slice: str = DEFAULT_MACHINE_SLICE,
        batched: bool = True,
    ) -> None:
        self.fs = fs
        self.procfs = procfs
        self.sysfs = sysfs
        self.machine_slice = machine_slice
        self.batched = batched
        #: Absorb transient kernel-surface errors (EIO/EBUSY) instead of
        #: raising out of the batch: failed sample reads skip the vCPU,
        #: failed cap writes land in :attr:`last_write_errors`.  Off by
        #: default — the seed behaviour is fail-fast — and switched on
        #: by a controller running with a
        #: :class:`~repro.core.resilience.ResiliencePolicy`.
        self.tolerate_errors = False
        self.stats = BackendStats()
        self.last_sample_batch: Optional[BatchStats] = None
        self.last_write_batch: Optional[BatchStats] = None
        #: Per-path errors of the latest :meth:`write_caps` batch
        #: (tolerant mode only; vanished cgroups are not errors).
        self.last_write_errors: Dict[str, OSError] = {}
        self._topology: Optional[List[VCpuSlot]] = None
        self._topology_vms: Optional[List[str]] = None
        self._prev_usage: Dict[str, float] = {}
        self._last_cap: Dict[str, Tuple[int, int]] = {}
        #: Bumped whenever cap state is dropped out of band (``uncap``,
        #: ``forget_vcpu``) — callers tracking their own "quota already
        #: in force" view (the bulk dirty mask) must treat every row as
        #: dirty after the epoch moves.
        self.cap_epoch = 0
        self._bulk_handles: Optional[Dict[str, Any]] = None

    # -- counted primitives -----------------------------------------------------

    def read_file(self, path: str) -> str:
        self.stats.fs_reads += 1
        return self.fs.read(path)

    def write_file(self, path: str, content: str) -> None:
        self.stats.fs_writes += 1
        self.fs.write(path, content)

    def listdir(self, path: str) -> List[str]:
        self.stats.fs_listdirs += 1
        return self.fs.listdir(path)

    def read_thread_stat(self, tid: int) -> str:
        self.stats.proc_reads += 1
        return self.procfs.read_stat(tid)

    def core_freq_khz(self, core: int) -> int:
        self.stats.sysfs_reads += 1
        return self.sysfs.scaling_cur_freq(core)

    # -- topology cache ---------------------------------------------------------

    def invalidate(self) -> None:
        """Drop the cached tid→cgroup map (call on VM churn)."""
        self._topology = None
        self._topology_vms = None
        self._bulk_handles = None

    def forget_usage(self, vcpu_path: str) -> None:
        """Drop the usage baseline for a vCPU cgroup.

        The cgroup may still exist (the caller is only resetting its
        monitoring state), so the topology cache is invalidated rather
        than edited — the next sample re-walks and rediscovers whatever
        is actually on disk.
        """
        self._prev_usage.pop(vcpu_path, None)
        self.invalidate()

    def forget_vcpu(self, vcpu_path: str) -> None:
        """Drop all cached state (usage baseline + cap) for a vCPU."""
        self.forget_usage(vcpu_path)
        self._last_cap.pop(vcpu_path, None)
        self.cap_epoch += 1

    # -- batch-entry hooks (fault-injection seam) -------------------------------

    def _begin_sample_batch(self, period_s: float) -> float:
        """Called exactly once when a monitoring batch starts — whether
        the caller entered through :meth:`read_vcpu_samples` or
        :meth:`sample_all`.  Subclasses (the fault injector) advance
        their tick clock and perturb the effective period here; the
        base backend passes the period through unchanged.
        """
        return period_s

    def _begin_write_batch(self) -> None:
        """Called exactly once when a cap-write batch starts
        (:meth:`write_caps` or :meth:`apply_caps`)."""

    def _direct_io_ok(self) -> bool:
        """Whether the handle-based bulk fast path may bypass the
        per-file primitives.  The fault injector vetoes this whenever a
        plan is armed — faults hit the per-file seam, which cached
        handles would never consult."""
        return True

    # -- batched monitoring -----------------------------------------------------

    def read_vcpu_samples(self, period_s: float = 1.0) -> List[VCpuSample]:
        """One monitoring pass over all hosted vCPUs.

        VM teardown races with the walk on a real host (a cgroup listed
        by readdir may be gone by the time its files are opened, and a
        tid may have exited before its ``/proc/<tid>/stat`` is read);
        such vCPUs are silently skipped, exactly as a production monitor
        must.
        """
        period_s = self._begin_sample_batch(period_s)
        return self._read_samples(period_s)

    def _read_samples(self, period_s: float) -> List[VCpuSample]:
        """The timed body of :meth:`read_vcpu_samples` (hook already run)."""
        t0 = time.perf_counter()
        before = self.stats.copy()
        try:
            if self.batched:
                samples = self._sample_batched(period_s)
            else:
                samples = self._sample_walk(period_s)
        except OSError:
            # A failure outside the per-vCPU loops (e.g. the machine
            # slice readdir itself).  Tolerant mode degrades to "nothing
            # observed this tick" — the resilience layer carries samples
            # forward — instead of killing the controller.
            if not self.tolerate_errors:
                raise
            self.stats.read_errors += 1
            self.invalidate()
            samples = []
        self.last_sample_batch = BatchStats(
            seconds=time.perf_counter() - t0, ops=self.stats - before
        )
        return samples

    def _sample_batched(self, period_s: float) -> List[VCpuSample]:
        if not self.fs.exists(self.machine_slice):
            self.invalidate()
            return []
        if self._topology is not None:
            # Churn guard: one readdir of the slice instead of a walk.
            if self.listdir(self.machine_slice) != self._topology_vms:
                self.invalidate()
        if self._topology is None:
            self.stats.topology_rescans += 1
            return self._sample_walk(period_s)
        samples: List[VCpuSample] = []
        freq_khz_by_core: Dict[int, int] = {}
        dead: List[str] = []
        for slot in self._topology:
            try:
                samples.append(
                    self._sample_slot(slot, period_s, freq_khz_by_core)
                )
            except OSError as exc:
                if isinstance(exc, (FileNotFoundError, ProcessLookupError)):
                    # vCPU torn down between scans: drop its state.
                    self.stats.vcpu_skips += 1
                    dead.append(slot.cgroup_path)
                elif self.tolerate_errors:
                    # Transient error (EIO and kin): skip this vCPU for
                    # one tick but keep its topology slot and baseline.
                    self.stats.read_errors += 1
                    self.stats.vcpu_skips += 1
                else:
                    raise
        for path in dead:
            self.forget_usage(path)
        if dead:
            self.invalidate()
        return samples

    def _sample_walk(self, period_s: float) -> List[VCpuSample]:
        """Full directory walk; caches the topology when complete.

        In unbatched mode this is exactly the seed monitor's access
        pattern: per-VM readdirs, a ``cgroup.threads`` read per vCPU and
        one sysfs read per vCPU (no per-core dedup).
        """
        samples: List[VCpuSample] = []
        slots: List[VCpuSlot] = []
        complete = True
        if not self.fs.exists(self.machine_slice):
            return samples
        vm_names = self.listdir(self.machine_slice)
        freq_khz_by_core: Optional[Dict[int, int]] = {} if self.batched else None
        for vm_name in vm_names:
            vm_path = f"{self.machine_slice}/{vm_name}"
            try:
                children = self.listdir(vm_path)
            except FileNotFoundError:
                self.stats.vm_skips += 1
                complete = False
                continue  # VM destroyed mid-walk
            for child in children:
                if not child.startswith("vcpu"):
                    continue
                vcpu_path = f"{vm_path}/{child}"
                try:
                    usage = self._read_usage_usec(vcpu_path)
                    prev = self._prev_usage.get(vcpu_path, usage)
                    self._prev_usage[vcpu_path] = usage
                    consumed = max(0.0, usage - prev)
                    tid = self._read_tid(vcpu_path)
                    if tid is None:
                        complete = False
                        continue
                    slot = VCpuSlot(
                        vm_name=vm_name,
                        vcpu_index=int(child[len("vcpu"):]),
                        cgroup_path=vcpu_path,
                        tid=tid,
                    )
                    samples.append(
                        self._finish_sample(
                            slot, consumed, period_s, freq_khz_by_core
                        )
                    )
                except OSError as exc:
                    if isinstance(exc, (FileNotFoundError, ProcessLookupError)):
                        self.stats.vcpu_skips += 1
                        self.forget_usage(vcpu_path)
                    elif self.tolerate_errors:
                        self.stats.read_errors += 1
                        self.stats.vcpu_skips += 1
                    else:
                        raise
                    complete = False
                    continue
                slots.append(slot)
        if self.batched and complete:
            self._topology = slots
            self._topology_vms = vm_names
        return samples

    def _sample_slot(
        self,
        slot: VCpuSlot,
        period_s: float,
        freq_khz_by_core: Dict[int, int],
    ) -> VCpuSample:
        usage = self._read_usage_usec(slot.cgroup_path)
        prev = self._prev_usage.get(slot.cgroup_path, usage)
        self._prev_usage[slot.cgroup_path] = usage
        consumed = max(0.0, usage - prev)
        return self._finish_sample(slot, consumed, period_s, freq_khz_by_core)

    def _finish_sample(
        self,
        slot: VCpuSlot,
        consumed: float,
        period_s: float,
        freq_khz_by_core: Optional[Dict[int, int]],
    ) -> VCpuSample:
        core = parse_stat_line(self.read_thread_stat(slot.tid)).processor
        if freq_khz_by_core is None:
            khz = self.core_freq_khz(core)
        else:
            khz = freq_khz_by_core.get(core)
            if khz is None:
                khz = self.core_freq_khz(core)
                freq_khz_by_core[core] = khz
        core_freq_mhz = khz / 1000.0
        share = min(consumed / period_us(period_s), 1.0)
        return VCpuSample(
            vm_name=slot.vm_name,
            vcpu_index=slot.vcpu_index,
            cgroup_path=slot.cgroup_path,
            tid=slot.tid,
            consumed_cycles=consumed,
            core=core,
            core_freq_mhz=core_freq_mhz,
            vfreq_mhz=share * core_freq_mhz,
        )

    # -- kernel-surface readers -------------------------------------------------

    def _read_usage_usec(self, vcpu_path: str) -> float:
        if self.fs.version is CgroupVersion.V2:
            stat = parse_cpu_stat(self.read_file(f"{vcpu_path}/cpu.stat"))
            return float(stat["usage_usec"])
        nanos = int(self.read_file(f"{vcpu_path}/cpuacct.usage").strip())
        return nanos / 1000.0

    def _read_tid(self, vcpu_path: str) -> Optional[int]:
        fname = "cgroup.threads" if self.fs.version is CgroupVersion.V2 else "tasks"
        content = self.read_file(f"{vcpu_path}/{fname}").split()
        if not content:
            return None
        # KVM vCPU cgroups hold exactly one thread (paper §III-B1).
        return int(content[0])

    # -- bulk-array monitoring --------------------------------------------------

    def sample_all(self, period_s: float = 1.0) -> SampleBatch:
        """One monitoring pass as a :class:`SampleBatch` of columns.

        Identical values to :meth:`read_vcpu_samples` on the same node
        state.  The fast path amortises the per-vCPU work into a few
        array operations over cached cgroup/proc handles; whenever the
        topology is unknown (first tick, churn, teardown race), the
        hierarchy is v1, or direct I/O is vetoed (armed fault plan),
        the batch is built from the list-based scan instead.
        """
        period_s = self._begin_sample_batch(period_s)
        if (
            self.batched
            and self.fs.version is CgroupVersion.V2
            and self.procfs is not None
            and self.sysfs is not None
            and self._direct_io_ok()
        ):
            batch = self._sample_all_fast(period_s)
            if batch is not None:
                return batch
        return SampleBatch.from_samples(self._read_samples(period_s), period_s)

    def _sample_all_fast(self, period_s: float) -> Optional[SampleBatch]:
        """Array sampling over cached handles; ``None`` → use the scan."""
        topo = self._topology
        if topo is None or not self.fs.exists(self.machine_slice):
            return None
        t0 = time.perf_counter()
        before = self.stats.copy()
        # Churn guard, same single readdir as the list path.
        if self.listdir(self.machine_slice) != self._topology_vms:
            self.invalidate()
            return None
        cache = self._bulk_handles
        if cache is None or cache["topo"] is not topo:
            cache = self._build_bulk_handles(topo)
            if cache is None:
                self.invalidate()
                return None
            self._bulk_handles = cache
        elif not self._validate_bulk_handles(cache):
            # A cgroup was torn down (or recreated under the same name)
            # since the handles were cached: re-resolve through the
            # path-based scan so teardown races behave identically.
            self.invalidate()
            return None
        n = len(topo)
        stat = self.procfs.stat
        try:
            usage = np.fromiter(
                (c.usage_usec for c in cache["cpus"]), dtype=np.float64, count=n
            )
            cores = np.fromiter(
                (stat(t).processor for t in cache["tids_list"]),
                dtype=np.int64,
                count=n,
            )
        except ProcessLookupError:
            # A vCPU thread exited between scans; nothing committed yet,
            # so the list path resamples and skips it exactly as usual.
            self.invalidate()
            return None
        self.stats.fs_reads += n
        self.stats.proc_reads += n
        prev = cache["prev"]
        prev_eff = np.where(np.isnan(prev), usage, prev)
        consumed = usage - prev_eff
        np.maximum(consumed, 0.0, out=consumed)
        cache["prev"] = usage
        self._prev_usage.update(zip(cache["paths"], usage.tolist()))
        # One frequency read per distinct core, as in the list path.
        khz_of = np.zeros(int(cores.max()) + 1 if n else 1, dtype=np.float64)
        for core in np.unique(cores):
            khz_of[core] = self.core_freq_khz(int(core))
        core_freq_mhz = khz_of[cores] / 1000.0
        share = np.minimum(consumed / period_us(period_s), 1.0)
        batch = SampleBatch(
            period_s=period_s,
            paths=cache["paths"],
            vm_names=cache["vms"],
            vcpu_indices=cache["vcpu_idx"],
            tids=cache["tids"],
            usage_usec=usage,
            consumed=consumed,
            cores=cores,
            core_freq_mhz=core_freq_mhz,
            vfreq_mhz=share * core_freq_mhz,
        )
        self.last_sample_batch = BatchStats(
            seconds=time.perf_counter() - t0, ops=self.stats - before
        )
        return batch

    def _build_bulk_handles(self, topo: List[VCpuSlot]) -> Optional[Dict[str, Any]]:
        """Resolve per-slot cgroup handles once per stable topology."""
        try:
            machine = self.fs.node(self.machine_slice)
        except FileNotFoundError:
            return None
        vm_nodes: Dict[str, Any] = {}
        cpus: List[Any] = []
        entries: List[Tuple[Any, str, Any]] = []
        paths: List[str] = []
        vms: List[str] = []
        for slot in topo:
            vm_node = vm_nodes.get(slot.vm_name)
            if vm_node is None:
                vm_node = machine.children.get(slot.vm_name)
                if vm_node is None:
                    return None
                vm_nodes[slot.vm_name] = vm_node
            child = slot.cgroup_path.rsplit("/", 1)[1]
            vcpu_node = vm_node.children.get(child)
            if vcpu_node is None:
                return None
            cpus.append(vcpu_node.cpu)
            entries.append((vm_node, child, vcpu_node))
            paths.append(slot.cgroup_path)
            vms.append(slot.vm_name)
        n = len(topo)
        return {
            "topo": topo,
            "vm_items": list(vm_nodes.items()),
            "entries": entries,
            "cpus": cpus,
            "paths": paths,
            "vms": vms,
            "vcpu_idx": np.fromiter(
                (s.vcpu_index for s in topo), dtype=np.int64, count=n
            ),
            "tids_list": [s.tid for s in topo],
            "tids": np.fromiter((s.tid for s in topo), dtype=np.int64, count=n),
            "prev": np.array(
                [self._prev_usage.get(p, np.nan) for p in paths], dtype=np.float64
            ),
        }

    def _validate_bulk_handles(self, cache: Dict[str, Any]) -> bool:
        """Cheap identity check that every cached handle is still live."""
        try:
            machine = self.fs.node(self.machine_slice)
        except FileNotFoundError:
            return False
        children = machine.children
        for name, vm_node in cache["vm_items"]:
            if children.get(name) is not vm_node:
                return False
        for vm_node, child, vcpu_node in cache["entries"]:
            if vm_node.children.get(child) is not vcpu_node:
                return False
        return True

    # -- coalesced capping writes ----------------------------------------------

    def write_cap_one(
        self, vcpu_path: str, quota_us: int, enforcement_period_us: int
    ) -> None:
        """Write one vCPU's quota, skipping if already in place.

        Raises :class:`FileNotFoundError` if the cgroup vanished (and
        drops the stale cache entry so a recreated cgroup is rewritten).
        """
        key = (int(quota_us), int(enforcement_period_us))
        if self.batched and self._last_cap.get(vcpu_path) == key:
            self.stats.cap_writes_skipped += 1
            return
        try:
            if self.fs.version is CgroupVersion.V2:
                self.write_file(f"{vcpu_path}/cpu.max", f"{key[0]} {key[1]}")
            else:
                self.write_file(f"{vcpu_path}/cpu.cfs_period_us", str(key[1]))
                self.write_file(f"{vcpu_path}/cpu.cfs_quota_us", str(key[0]))
        except OSError:
            # The on-disk value is now unknown (the v1 pair may be
            # half-applied): drop the cache entry so a retry or a
            # recreated cgroup is rewritten unconditionally.
            self._last_cap.pop(vcpu_path, None)
            raise
        self._last_cap[vcpu_path] = key

    def write_caps(
        self, quotas: Mapping[str, int], enforcement_period_us: int
    ) -> Dict[str, int]:
        """Coalesced quota writes; returns quotas now in force (µs).

        Skipped-because-unchanged paths count as applied.  Paths whose
        cgroup vanished mid-batch (teardown races the loop on a real
        host) are silently dropped from the result.  In tolerant mode a
        transient write error (EIO/EBUSY) is recorded per path in
        :attr:`last_write_errors` instead of aborting the batch, so the
        controller can retry exactly the failed subset.
        """
        self._begin_write_batch()
        t0 = time.perf_counter()
        before = self.stats.copy()
        written: Dict[str, int] = {}
        self.last_write_errors = {}
        for path, quota in quotas.items():
            try:
                self.write_cap_one(path, quota, enforcement_period_us)
            except FileNotFoundError:
                continue
            except OSError as exc:
                if not self.tolerate_errors:
                    raise
                self.stats.write_errors += 1
                self.last_write_errors[path] = exc
                continue
            written[path] = int(quota)
        self.last_write_batch = BatchStats(
            seconds=time.perf_counter() - t0, ops=self.stats - before
        )
        return written

    def apply_caps(
        self,
        paths: Sequence[str],
        quota_us: np.ndarray,
        dirty: Optional[np.ndarray],
        enforcement_period_us: int,
    ) -> Dict[str, int]:
        """Array spelling of :meth:`write_caps` driven by a dirty mask.

        ``paths``/``quota_us`` are parallel; only rows where ``dirty``
        is true are written (``dirty=None`` writes every row).  Clean
        rows count as :attr:`BackendStats.cap_writes_skipped`, exactly
        like a value-unchanged skip in :meth:`write_cap_one`.  Returns
        the quotas now in force among the *dirty* rows; vanished
        cgroups are dropped and, in tolerant mode, transient write
        errors land in :attr:`last_write_errors` per path.
        """
        self._begin_write_batch()
        t0 = time.perf_counter()
        before = self.stats.copy()
        written: Dict[str, int] = {}
        self.last_write_errors = {}
        if dirty is None:
            rows: Sequence[int] = range(len(paths))
        else:
            rows = np.flatnonzero(dirty)
            self.stats.cap_writes_skipped += len(paths) - len(rows)
        enf = int(enforcement_period_us)
        for i in rows:
            path = paths[i]
            quota = int(quota_us[i])
            try:
                self.write_cap_one(path, quota, enf)
            except FileNotFoundError:
                continue
            except OSError as exc:
                if not self.tolerate_errors:
                    raise
                self.stats.write_errors += 1
                self.last_write_errors[path] = exc
                continue
            written[path] = quota
        self.last_write_batch = BatchStats(
            seconds=time.perf_counter() - t0, ops=self.stats - before
        )
        return written

    def uncap(self, vcpu_path: str, enforcement_period_us: int) -> None:
        """Remove a vCPU's bandwidth limit (configuration A / teardown)."""
        if self.fs.version is CgroupVersion.V2:
            self.write_file(
                f"{vcpu_path}/cpu.max", f"max {enforcement_period_us}"
            )
        else:
            self.write_file(f"{vcpu_path}/cpu.cfs_quota_us", "-1")
        self._last_cap.pop(vcpu_path, None)
        self.cap_epoch += 1
