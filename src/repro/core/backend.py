"""Batched host-backend I/O layer — all kernel-surface traffic for one node.

The paper reports that ~4 ms of the 5 ms iteration cost is *monitoring*
(§IV-A2): per-vCPU ``cpu.stat``, ``/proc/<tid>/stat`` and
``scaling_cur_freq`` reads dominate the loop.  The seed port repeated
that pattern — one filesystem call per file per tick, a fresh directory
walk every iteration, and an unconditional ``cpu.max`` write per vCPU.

:class:`HostBackend` owns every read and write the controller issues
against one node's kernel surfaces and batches them:

* :meth:`read_vcpu_samples` — a single-pass cgroup scan backed by a
  cached tid→cgroup map.  After the first full walk, a tick costs one
  ``readdir`` of the machine slice (the churn guard), one ``cpu.stat``
  read and one ``/proc/<tid>/stat`` read per vCPU, and one
  ``scaling_cur_freq`` read per *distinct core* — ``cgroup.threads``
  is never re-read while the topology is stable.  The map is
  invalidated on VM churn (register/unregister, a changed VM set, or a
  teardown race observed mid-scan).
* :meth:`write_caps` — coalesced ``cpu.max`` (v1: quota/period) writes
  that skip values already in place, so a converged controller writes
  nothing at all.
* per-batch wall-time and syscall-count stats
  (:attr:`HostBackend.stats`, :attr:`last_sample_batch`,
  :attr:`last_write_batch`) so the saving is measurable, not asserted.

``batched=False`` reproduces the seed access pattern exactly (fresh
walk, per-vCPU ``cgroup.threads`` read, unconditional writes) with the
same counters — the A/B used by ``benchmarks/bench_backend_batching.py``
and the backend unit tests.

The sample *values* are bit-identical in both modes: caching only
removes re-reads of immutable data (a vCPU cgroup's single KVM tid) and
duplicate reads of the same core's frequency within one batch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields
from typing import Dict, List, Mapping, Optional, Tuple

from repro.cgroups.cpu import parse_cpu_stat
from repro.cgroups.fs import CgroupFS, CgroupVersion
from repro.cgroups.procfs import ProcFS, parse_stat_line
from repro.cgroups.sysfs import CpuFreqSysFS
from repro.core.units import period_us

#: Default KVM/libvirt machine slice (mirrors repro.hw.node.MACHINE_SLICE
#: without importing the hw layer from core).
DEFAULT_MACHINE_SLICE = "/machine.slice"


@dataclass(frozen=True)
class VCpuSample:
    """Stage-1 output for one vCPU at one controller iteration."""

    vm_name: str
    vcpu_index: int
    cgroup_path: str
    tid: int
    consumed_cycles: float  # u_{i,j,t}: µs of CPU in the last period
    core: int
    core_freq_mhz: float
    vfreq_mhz: float  # estimated virtual frequency


@dataclass(frozen=True)
class VCpuSlot:
    """One entry of the cached tid→cgroup topology map."""

    vm_name: str
    vcpu_index: int
    cgroup_path: str
    tid: int


@dataclass
class BackendStats:
    """Cumulative kernel-surface operation counters for one backend.

    Each field counts one class of would-be syscalls on a real host:
    a cgroupfs ``read()``/``write()``/``readdir()``, a ``/proc`` stat
    read, or a cpufreq sysfs read.  ``cap_writes_skipped`` counts
    ``cpu.max`` writes elided because the value was already in place;
    ``topology_rescans`` counts full directory walks.
    """

    fs_reads: int = 0
    fs_writes: int = 0
    fs_listdirs: int = 0
    proc_reads: int = 0
    sysfs_reads: int = 0
    cap_writes_skipped: int = 0
    topology_rescans: int = 0
    #: vCPUs skipped mid-scan (gone cgroup, dead tid, or — in tolerant
    #: mode — a transient read error on one of its files).
    vcpu_skips: int = 0
    #: Whole VM directories that vanished between readdir and descent.
    vm_skips: int = 0
    #: Transient read errors absorbed in tolerant mode (EIO and kin).
    read_errors: int = 0
    #: ``cpu.max`` writes that failed with a non-ENOENT error
    #: (recorded in :attr:`HostBackend.last_write_errors`).
    write_errors: int = 0

    @property
    def total_ops(self) -> int:
        """All filesystem operations actually issued (skips excluded)."""
        return (
            self.fs_reads
            + self.fs_writes
            + self.fs_listdirs
            + self.proc_reads
            + self.sysfs_reads
        )

    def copy(self) -> "BackendStats":
        return BackendStats(**self.as_dict())

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __sub__(self, other: "BackendStats") -> "BackendStats":
        return BackendStats(
            **{
                f.name: getattr(self, f.name) - getattr(other, f.name)
                for f in fields(self)
            }
        )

    def __add__(self, other: "BackendStats") -> "BackendStats":
        return BackendStats(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )


@dataclass(frozen=True)
class BatchStats:
    """Wall time and operation delta of one batched backend call."""

    seconds: float
    ops: BackendStats


def vm_component(path: str, machine_slice: str = DEFAULT_MACHINE_SLICE) -> Optional[str]:
    """The VM directory component of a vCPU cgroup path.

    ``/machine.slice/vm-1/vcpu0`` → ``vm-1``;
    ``/machine.slice/foo/vm-1/vcpu0`` → ``foo`` (NOT ``vm-1`` — exact
    component matching is what fixes the old substring-based
    ``unregister_vm``).  Returns ``None`` for paths outside the slice.
    """
    prefix = machine_slice.rstrip("/") + "/"
    if not path.startswith(prefix):
        return None
    rest = path[len(prefix):]
    return rest.split("/", 1)[0] if rest else None


class HostBackend:
    """Batched, counted access to one node's kernel surfaces.

    ``procfs``/``sysfs`` may be ``None`` for write-only users (the
    enforcer standalone); monitoring through such a backend raises.
    """

    def __init__(
        self,
        fs: CgroupFS,
        procfs: Optional[ProcFS] = None,
        sysfs: Optional[CpuFreqSysFS] = None,
        *,
        machine_slice: str = DEFAULT_MACHINE_SLICE,
        batched: bool = True,
    ) -> None:
        self.fs = fs
        self.procfs = procfs
        self.sysfs = sysfs
        self.machine_slice = machine_slice
        self.batched = batched
        #: Absorb transient kernel-surface errors (EIO/EBUSY) instead of
        #: raising out of the batch: failed sample reads skip the vCPU,
        #: failed cap writes land in :attr:`last_write_errors`.  Off by
        #: default — the seed behaviour is fail-fast — and switched on
        #: by a controller running with a
        #: :class:`~repro.core.resilience.ResiliencePolicy`.
        self.tolerate_errors = False
        self.stats = BackendStats()
        self.last_sample_batch: Optional[BatchStats] = None
        self.last_write_batch: Optional[BatchStats] = None
        #: Per-path errors of the latest :meth:`write_caps` batch
        #: (tolerant mode only; vanished cgroups are not errors).
        self.last_write_errors: Dict[str, OSError] = {}
        self._topology: Optional[List[VCpuSlot]] = None
        self._topology_vms: Optional[List[str]] = None
        self._prev_usage: Dict[str, float] = {}
        self._last_cap: Dict[str, Tuple[int, int]] = {}

    # -- counted primitives -----------------------------------------------------

    def read_file(self, path: str) -> str:
        self.stats.fs_reads += 1
        return self.fs.read(path)

    def write_file(self, path: str, content: str) -> None:
        self.stats.fs_writes += 1
        self.fs.write(path, content)

    def listdir(self, path: str) -> List[str]:
        self.stats.fs_listdirs += 1
        return self.fs.listdir(path)

    def read_thread_stat(self, tid: int) -> str:
        self.stats.proc_reads += 1
        return self.procfs.read_stat(tid)

    def core_freq_khz(self, core: int) -> int:
        self.stats.sysfs_reads += 1
        return self.sysfs.scaling_cur_freq(core)

    # -- topology cache ---------------------------------------------------------

    def invalidate(self) -> None:
        """Drop the cached tid→cgroup map (call on VM churn)."""
        self._topology = None
        self._topology_vms = None

    def forget_usage(self, vcpu_path: str) -> None:
        """Drop the usage baseline for a vCPU cgroup.

        The cgroup may still exist (the caller is only resetting its
        monitoring state), so the topology cache is invalidated rather
        than edited — the next sample re-walks and rediscovers whatever
        is actually on disk.
        """
        self._prev_usage.pop(vcpu_path, None)
        self.invalidate()

    def forget_vcpu(self, vcpu_path: str) -> None:
        """Drop all cached state (usage baseline + cap) for a vCPU."""
        self.forget_usage(vcpu_path)
        self._last_cap.pop(vcpu_path, None)

    # -- batched monitoring -----------------------------------------------------

    def read_vcpu_samples(self, period_s: float = 1.0) -> List[VCpuSample]:
        """One monitoring pass over all hosted vCPUs.

        VM teardown races with the walk on a real host (a cgroup listed
        by readdir may be gone by the time its files are opened, and a
        tid may have exited before its ``/proc/<tid>/stat`` is read);
        such vCPUs are silently skipped, exactly as a production monitor
        must.
        """
        t0 = time.perf_counter()
        before = self.stats.copy()
        try:
            if self.batched:
                samples = self._sample_batched(period_s)
            else:
                samples = self._sample_walk(period_s)
        except OSError:
            # A failure outside the per-vCPU loops (e.g. the machine
            # slice readdir itself).  Tolerant mode degrades to "nothing
            # observed this tick" — the resilience layer carries samples
            # forward — instead of killing the controller.
            if not self.tolerate_errors:
                raise
            self.stats.read_errors += 1
            self.invalidate()
            samples = []
        self.last_sample_batch = BatchStats(
            seconds=time.perf_counter() - t0, ops=self.stats - before
        )
        return samples

    def _sample_batched(self, period_s: float) -> List[VCpuSample]:
        if not self.fs.exists(self.machine_slice):
            self.invalidate()
            return []
        if self._topology is not None:
            # Churn guard: one readdir of the slice instead of a walk.
            if self.listdir(self.machine_slice) != self._topology_vms:
                self.invalidate()
        if self._topology is None:
            self.stats.topology_rescans += 1
            return self._sample_walk(period_s)
        samples: List[VCpuSample] = []
        freq_khz_by_core: Dict[int, int] = {}
        dead: List[str] = []
        for slot in self._topology:
            try:
                samples.append(
                    self._sample_slot(slot, period_s, freq_khz_by_core)
                )
            except OSError as exc:
                if isinstance(exc, (FileNotFoundError, ProcessLookupError)):
                    # vCPU torn down between scans: drop its state.
                    self.stats.vcpu_skips += 1
                    dead.append(slot.cgroup_path)
                elif self.tolerate_errors:
                    # Transient error (EIO and kin): skip this vCPU for
                    # one tick but keep its topology slot and baseline.
                    self.stats.read_errors += 1
                    self.stats.vcpu_skips += 1
                else:
                    raise
        for path in dead:
            self.forget_usage(path)
        if dead:
            self.invalidate()
        return samples

    def _sample_walk(self, period_s: float) -> List[VCpuSample]:
        """Full directory walk; caches the topology when complete.

        In unbatched mode this is exactly the seed monitor's access
        pattern: per-VM readdirs, a ``cgroup.threads`` read per vCPU and
        one sysfs read per vCPU (no per-core dedup).
        """
        samples: List[VCpuSample] = []
        slots: List[VCpuSlot] = []
        complete = True
        if not self.fs.exists(self.machine_slice):
            return samples
        vm_names = self.listdir(self.machine_slice)
        freq_khz_by_core: Optional[Dict[int, int]] = {} if self.batched else None
        for vm_name in vm_names:
            vm_path = f"{self.machine_slice}/{vm_name}"
            try:
                children = self.listdir(vm_path)
            except FileNotFoundError:
                self.stats.vm_skips += 1
                complete = False
                continue  # VM destroyed mid-walk
            for child in children:
                if not child.startswith("vcpu"):
                    continue
                vcpu_path = f"{vm_path}/{child}"
                try:
                    usage = self._read_usage_usec(vcpu_path)
                    prev = self._prev_usage.get(vcpu_path, usage)
                    self._prev_usage[vcpu_path] = usage
                    consumed = max(0.0, usage - prev)
                    tid = self._read_tid(vcpu_path)
                    if tid is None:
                        complete = False
                        continue
                    slot = VCpuSlot(
                        vm_name=vm_name,
                        vcpu_index=int(child[len("vcpu"):]),
                        cgroup_path=vcpu_path,
                        tid=tid,
                    )
                    samples.append(
                        self._finish_sample(
                            slot, consumed, period_s, freq_khz_by_core
                        )
                    )
                except OSError as exc:
                    if isinstance(exc, (FileNotFoundError, ProcessLookupError)):
                        self.stats.vcpu_skips += 1
                        self.forget_usage(vcpu_path)
                    elif self.tolerate_errors:
                        self.stats.read_errors += 1
                        self.stats.vcpu_skips += 1
                    else:
                        raise
                    complete = False
                    continue
                slots.append(slot)
        if self.batched and complete:
            self._topology = slots
            self._topology_vms = vm_names
        return samples

    def _sample_slot(
        self,
        slot: VCpuSlot,
        period_s: float,
        freq_khz_by_core: Dict[int, int],
    ) -> VCpuSample:
        usage = self._read_usage_usec(slot.cgroup_path)
        prev = self._prev_usage.get(slot.cgroup_path, usage)
        self._prev_usage[slot.cgroup_path] = usage
        consumed = max(0.0, usage - prev)
        return self._finish_sample(slot, consumed, period_s, freq_khz_by_core)

    def _finish_sample(
        self,
        slot: VCpuSlot,
        consumed: float,
        period_s: float,
        freq_khz_by_core: Optional[Dict[int, int]],
    ) -> VCpuSample:
        core = parse_stat_line(self.read_thread_stat(slot.tid)).processor
        if freq_khz_by_core is None:
            khz = self.core_freq_khz(core)
        else:
            khz = freq_khz_by_core.get(core)
            if khz is None:
                khz = self.core_freq_khz(core)
                freq_khz_by_core[core] = khz
        core_freq_mhz = khz / 1000.0
        share = min(consumed / period_us(period_s), 1.0)
        return VCpuSample(
            vm_name=slot.vm_name,
            vcpu_index=slot.vcpu_index,
            cgroup_path=slot.cgroup_path,
            tid=slot.tid,
            consumed_cycles=consumed,
            core=core,
            core_freq_mhz=core_freq_mhz,
            vfreq_mhz=share * core_freq_mhz,
        )

    # -- kernel-surface readers -------------------------------------------------

    def _read_usage_usec(self, vcpu_path: str) -> float:
        if self.fs.version is CgroupVersion.V2:
            stat = parse_cpu_stat(self.read_file(f"{vcpu_path}/cpu.stat"))
            return float(stat["usage_usec"])
        nanos = int(self.read_file(f"{vcpu_path}/cpuacct.usage").strip())
        return nanos / 1000.0

    def _read_tid(self, vcpu_path: str) -> Optional[int]:
        fname = "cgroup.threads" if self.fs.version is CgroupVersion.V2 else "tasks"
        content = self.read_file(f"{vcpu_path}/{fname}").split()
        if not content:
            return None
        # KVM vCPU cgroups hold exactly one thread (paper §III-B1).
        return int(content[0])

    # -- coalesced capping writes ----------------------------------------------

    def write_cap_one(
        self, vcpu_path: str, quota_us: int, enforcement_period_us: int
    ) -> None:
        """Write one vCPU's quota, skipping if already in place.

        Raises :class:`FileNotFoundError` if the cgroup vanished (and
        drops the stale cache entry so a recreated cgroup is rewritten).
        """
        key = (int(quota_us), int(enforcement_period_us))
        if self.batched and self._last_cap.get(vcpu_path) == key:
            self.stats.cap_writes_skipped += 1
            return
        try:
            if self.fs.version is CgroupVersion.V2:
                self.write_file(f"{vcpu_path}/cpu.max", f"{key[0]} {key[1]}")
            else:
                self.write_file(f"{vcpu_path}/cpu.cfs_period_us", str(key[1]))
                self.write_file(f"{vcpu_path}/cpu.cfs_quota_us", str(key[0]))
        except OSError:
            # The on-disk value is now unknown (the v1 pair may be
            # half-applied): drop the cache entry so a retry or a
            # recreated cgroup is rewritten unconditionally.
            self._last_cap.pop(vcpu_path, None)
            raise
        self._last_cap[vcpu_path] = key

    def write_caps(
        self, quotas: Mapping[str, int], enforcement_period_us: int
    ) -> Dict[str, int]:
        """Coalesced quota writes; returns quotas now in force (µs).

        Skipped-because-unchanged paths count as applied.  Paths whose
        cgroup vanished mid-batch (teardown races the loop on a real
        host) are silently dropped from the result.  In tolerant mode a
        transient write error (EIO/EBUSY) is recorded per path in
        :attr:`last_write_errors` instead of aborting the batch, so the
        controller can retry exactly the failed subset.
        """
        t0 = time.perf_counter()
        before = self.stats.copy()
        written: Dict[str, int] = {}
        self.last_write_errors = {}
        for path, quota in quotas.items():
            try:
                self.write_cap_one(path, quota, enforcement_period_us)
            except FileNotFoundError:
                continue
            except OSError as exc:
                if not self.tolerate_errors:
                    raise
                self.stats.write_errors += 1
                self.last_write_errors[path] = exc
                continue
            written[path] = int(quota)
        self.last_write_batch = BatchStats(
            seconds=time.perf_counter() - t0, ops=self.stats - before
        )
        return written

    def uncap(self, vcpu_path: str, enforcement_period_us: int) -> None:
        """Remove a vCPU's bandwidth limit (configuration A / teardown)."""
        if self.fs.version is CgroupVersion.V2:
            self.write_file(
                f"{vcpu_path}/cpu.max", f"max {enforcement_period_us}"
            )
        else:
            self.write_file(f"{vcpu_path}/cpu.cfs_quota_us", "-1")
        self._last_cap.pop(vcpu_path, None)
