"""Stage 3 — credits and base capping (paper §III-B3, Eqs. 4 and 5).

A VM earns credits whenever a vCPU consumed less than its guaranteed
cycles ``C_i`` in the previous iteration (Eq. 4); the wallet buys burst
cycles in the stage-4 auction, prioritising historically frugal VMs over
chronically greedy ones.

The base capping (Eq. 5) grants each vCPU ``min(e, C_i)``: the guarantee
is enforced only when the estimate says it will be used, so unneeded
guaranteed cycles stay in the market instead of being wasted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

from repro.core.config import ControllerConfig


class CreditLedger:
    """Per-VM credit wallets (cycles)."""

    def __init__(self, config: ControllerConfig) -> None:
        self.config = config
        self._wallets: Dict[str, float] = {}

    def balance(self, vm_name: str) -> float:
        return self._wallets.get(vm_name, 0.0)

    def wallets(self) -> Dict[str, float]:
        return dict(self._wallets)

    def forget(self, vm_name: str) -> None:
        self._wallets.pop(vm_name, None)

    def clear(self) -> None:
        """Drop every wallet (controller reset before snapshot restore)."""
        self._wallets.clear()

    def set_balance(self, vm_name: str, balance: float) -> None:
        """Load a wallet balance directly (snapshot restore).

        The same invariants as organic accrual apply: never negative,
        clipped to the configured credit cap.
        """
        balance = float(balance)
        if balance < 0:
            raise ValueError(f"negative wallet for {vm_name}: {balance}")
        self._wallets[vm_name] = min(balance, self.config.credit_cap)

    def accrue(
        self,
        vm_name: str,
        consumed_per_vcpu: List[float],
        guaranteed_cycles: float,
    ) -> float:
        """Eq. 4: earn ``C_i - u`` per under-consuming vCPU; returns the gain."""
        if guaranteed_cycles < 0:
            raise ValueError("guaranteed cycles must be >= 0")
        gain = sum(
            guaranteed_cycles - u for u in consumed_per_vcpu if u < guaranteed_cycles
        )
        wallet = self._wallets.get(vm_name, 0.0) + gain
        self._wallets[vm_name] = min(wallet, self.config.credit_cap)
        return gain

    def apply_gain(self, vm_name: str, gain: float) -> None:
        """Credit a pre-computed Eq. 4 gain (the vectorised stage 3).

        The gain is the per-VM segment reduction the vectorised engine
        computes with ``np.bincount``; the wallet update is the same two
        operations :meth:`accrue` performs, so both engines produce
        bit-identical balances.
        """
        if gain < 0:
            raise ValueError(f"negative credit gain for {vm_name}: {gain}")
        wallet = self._wallets.get(vm_name, 0.0) + gain
        self._wallets[vm_name] = min(wallet, self.config.credit_cap)

    def apply_gains(self, named_gains) -> None:
        """Batch :meth:`apply_gain` over ``(vm_name, gain)`` pairs.

        A zero gain on an existing wallet is skipped — ``w + 0.0`` and
        ``min(w, cap)`` are exact no-ops there (wallets are clipped at
        every write, so ``w <= cap`` always holds) — but a zero gain on
        an *unknown* VM still creates its 0.0 wallet, exactly as
        :meth:`accrue` would on the scalar engine.
        """
        wallets = self._wallets
        cap = self.config.credit_cap
        for vm_name, gain in named_gains:
            if gain < 0:
                raise ValueError(
                    f"negative credit gain for {vm_name}: {gain}"
                )
            if gain == 0.0 and vm_name in wallets:
                continue
            wallets[vm_name] = min(wallets.get(vm_name, 0.0) + gain, cap)

    def any_funded(self, threshold: float = 1e-9) -> bool:
        """True if any wallet could pay in an auction (balance > threshold).

        Lets the controller skip the stage-4 buyer bookkeeping entirely
        on the common contended steady state where every VM consumes at
        or above its guarantee and no wallet ever fills.
        """
        for balance in self._wallets.values():
            if balance > threshold:
                return True
        return False

    def spend(self, vm_name: str, amount: float) -> None:
        """Deduct an auction purchase; wallets never go negative."""
        if amount < 0:
            raise ValueError("cannot spend a negative amount")
        balance = self._wallets.get(vm_name, 0.0)
        if amount > balance + 1e-9:
            raise ValueError(
                f"VM {vm_name} overspent: {amount} > balance {balance}"
            )
        self._wallets[vm_name] = max(0.0, balance - amount)


@dataclass(frozen=True)
class BaseCapping:
    """Stage-3 output for one vCPU."""

    cycles: float  # c_{i,j,t} before the auction
    wants_more: bool  # e > C_i: a potential auction buyer


def apply_base_capping(
    estimates: Mapping[str, float],
    guarantees: Mapping[str, float],
) -> Dict[str, BaseCapping]:
    """Eq. 5: ``c = e if e < C_i else C_i`` per vCPU path.

    ``estimates`` and ``guarantees`` are keyed by vCPU cgroup path;
    ``guarantees`` holds each vCPU's ``C_i`` (same for all vCPUs of a VM).
    """
    out: Dict[str, BaseCapping] = {}
    for path, estimate in estimates.items():
        try:
            guarantee = guarantees[path]
        except KeyError:
            raise KeyError(f"no guarantee registered for vCPU {path}") from None
        if estimate < guarantee:
            out[path] = BaseCapping(cycles=estimate, wants_more=False)
        else:
            out[path] = BaseCapping(cycles=guarantee, wants_more=estimate > guarantee)
    return out
