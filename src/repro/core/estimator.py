"""Stage 2 — estimating upcoming vCPU utilisation (paper §III-B2).

Per vCPU, a sliding window of the last ``n`` consumptions yields a
least-squares *trend* (Eq. 3).  Together with the current capping it
selects one of the paper's three cases:

a) **increase** — trend > 0 and consumption above the increase trigger:
   multiply the capping (fast convergence vs. waste trade-off);
b) **decrease** — trend < 0 and consumption below the decrease trigger:
   shrink gently (a big decrease factor causes the oscillation the paper
   warns about);
c) **stable** — neither trigger fires: pin the capping just above the
   consumption so the increase trigger stays silent yet waste is small.

The output ``e_{i,j,t}`` is the *estimated demand*, later capped by the
guarantee (stage 3) and the market (stages 4-5).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict

import numpy as np

from repro.core.config import ControllerConfig
from repro.core.units import period_us


class Case(enum.Enum):
    """Which of the paper's three estimation cases applied."""

    INCREASE = "increase"
    DECREASE = "decrease"
    STABLE = "stable"
    WARMUP = "warmup"  # not enough history yet


@dataclass(frozen=True)
class EstimatorDecision:
    """Stage-2 output for one vCPU."""

    estimate_cycles: float  # e_{i,j,t}
    trend: float
    case: Case


def trend_slope(history, *, literal: bool = False) -> float:
    """Consumption trend over the window (Eq. 3).

    ``literal=True`` uses the paper's printed centring constant
    ``S_n = n(n+1)/2`` instead of the mean abscissa; both give the same
    sign (the numerator is invariant to the centring constant, and the
    denominator stays positive), which is all the controller consumes.

    Scalar arithmetic on purpose: windows are ~5 elements and this runs
    once per vCPU per second — NumPy dispatch overhead dominates at that
    size (it made stage 2 the most expensive controller stage).
    """
    n = len(history)
    if n < 2:
        return 0.0
    center = n * (n + 1) / 2.0 if literal else (n + 1) / 2.0
    mean_u = sum(history) / n
    num = 0.0
    denom = 0.0
    for k, u in enumerate(history, start=1):
        dx = k - center
        num += dx * (u - mean_u)
        denom += dx * dx
    if denom == 0.0:
        return 0.0
    return num / denom


class TrendEstimator:
    """Keeps per-vCPU history and produces stage-2 decisions."""

    def __init__(self, config: ControllerConfig) -> None:
        self.config = config
        self._history: Dict[str, Deque[float]] = {}

    def observe(self, vcpu_path: str, consumed_cycles: float) -> None:
        """Append one iteration's consumption to the vCPU's history."""
        hist = self._history.get(vcpu_path)
        if hist is None:
            hist = deque(maxlen=self.config.history_len)
            self._history[vcpu_path] = hist
        hist.append(float(consumed_cycles))

    def forget(self, vcpu_path: str) -> None:
        self._history.pop(vcpu_path, None)

    def reset(self) -> None:
        """Drop every history (controller reset before snapshot restore)."""
        self._history.clear()

    def history(self, vcpu_path: str) -> np.ndarray:
        return np.asarray(self._history.get(vcpu_path, ()), dtype=np.float64)

    def decide(self, vcpu_path: str, current_cap_cycles: float) -> EstimatorDecision:
        """Stage-2 decision for one vCPU given its current capping."""
        cfg = self.config
        p_us = period_us(cfg.period_s)
        floor = cfg.min_cap_frac * p_us
        hist = self._history.get(vcpu_path)
        if not hist:
            return EstimatorDecision(estimate_cycles=max(floor, current_cap_cycles), trend=0.0, case=Case.WARMUP)
        u = hist[-1]
        cap = max(current_cap_cycles, floor)
        if len(hist) < 2:
            return EstimatorDecision(
                estimate_cycles=min(max(max(u, cap), floor), p_us),
                trend=0.0,
                case=Case.WARMUP,
            )

        slope = trend_slope(hist, literal=cfg.literal_trend)
        eps = cfg.trend_epsilon * p_us

        if slope > eps and u >= cfg.increase_trigger * cap:
            estimate = cap * cfg.increase_mult
            case = Case.INCREASE
        elif slope < -eps and u <= cfg.decrease_trigger * cap:
            estimate = max(cap * cfg.decrease_mult, u)
            case = Case.DECREASE
        else:
            # Stable: sit just above consumption so neither trigger fires.
            # A vCPU *pegged at its cap* (u ~= cap, flat history because it
            # cannot rise) must still be able to grow — but the test is
            # "consumed everything allowed", NOT the increase trigger:
            # the stable case parks the cap at u/trigger, so a trigger-based
            # test here would re-fire every other iteration and the capping
            # would oscillate x2 / /2 forever.
            if u >= 0.99 * cap and slope >= -eps:
                estimate = cap * cfg.increase_mult
                case = Case.INCREASE
            else:
                estimate = u / cfg.increase_trigger
                case = Case.STABLE
        return EstimatorDecision(
            estimate_cycles=min(max(estimate, floor), p_us),
            trend=slope,
            case=case,
        )
