"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's evaluation sections:

* ``eval1`` — Table II/III protocol on chetemi or chiclet (Figs. 6-11)
* ``eval2`` — Table V heterogeneous protocol (Figs. 12-14)
* ``placement`` — the §IV-C BestFit study
* ``overhead`` — per-stage controller cost on a loaded host

Every command prints plain-text tables (the same renderers the benches
use) so results can be diffed across runs.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.sim.report import render_table, scores_rows, series_to_rows

#: Single-engine choices (controller hot-path implementations).
_ENGINE_CHOICES = ("scalar", "vectorized", "bulk")
#: Multi-engine selectors for the checking tools: ``both`` keeps its
#: historical meaning (scalar + vectorized), ``all`` adds bulk.
_ENGINE_MULTI = _ENGINE_CHOICES + ("both", "all")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Enabling Dynamic Virtual Frequency "
        "Scaling for Virtual Machines in the Cloud' (CLUSTER 2022)",
    )
    parser.add_argument(
        "--log-level", default=None,
        choices=("debug", "info", "warning", "error"),
        help="enable structured logging at this level (default: silent)",
    )
    parser.add_argument(
        "--log-format", default="console", choices=("console", "json"),
        help="log output format (json = one object per line)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p1 = sub.add_parser("eval1", help="first evaluation (Tables II/III)")
    p1.add_argument("--node", choices=("chetemi", "chiclet"), default="chetemi")
    p1.add_argument("--config", choices=("A", "B", "both"), default="both")
    p1.add_argument("--duration", type=float, default=600.0)
    p1.add_argument("--time-scale", type=float, default=1.0)
    p1.add_argument("--dt", type=float, default=0.5)
    p1.add_argument("--scores", action="store_true",
                    help="run to completion and print per-iteration scores")
    p1.add_argument("--chart", action="store_true",
                    help="render the frequency series as an ASCII chart")
    _add_controller_flags(p1)

    p2 = sub.add_parser("eval2", help="second evaluation (Table V)")
    p2.add_argument("--config", choices=("A", "B", "both"), default="both")
    p2.add_argument("--duration", type=float, default=700.0)
    p2.add_argument("--time-scale", type=float, default=1.0)
    p2.add_argument("--dt", type=float, default=0.5)
    p2.add_argument("--chart", action="store_true",
                    help="render the frequency series as an ASCII chart")
    _add_controller_flags(p2)

    p3 = sub.add_parser("placement", help="the §IV-C placement study")
    p3.add_argument("--consolidation", type=float, default=1.8,
                    help="consolidation factor for the vCPU-count variant")

    p4 = sub.add_parser("overhead", help="controller per-stage cost")
    p4.add_argument("--iterations", type=int, default=20)

    p5 = sub.add_parser("operator", help="admission-policy study under Poisson churn")
    p5.add_argument("--horizon", type=float, default=600.0)
    p5.add_argument("--rate", type=float, default=0.06, help="VM arrivals per second")
    p5.add_argument("--seed", type=int, default=42)
    p5.add_argument("--workers", type=int, default=None,
                    help="thread-pool size for the node-manager control plane")
    p5.add_argument("--serial", action="store_true",
                    help="tick nodes one by one instead of in parallel")
    _add_controller_flags(p5)

    p6 = sub.add_parser(
        "check",
        help="paper-equation invariant tools (fuzzer, trace replay)",
    )
    checksub = p6.add_subparsers(dest="check_command", required=True)
    cf = checksub.add_parser(
        "fuzz",
        help="run seeded fuzz scenarios under both engines with oracles armed",
    )
    cf.add_argument("--seeds", type=int, default=25, metavar="N",
                    help="number of consecutive seeds to run (default 25)")
    cf.add_argument("--start-seed", type=int, default=0, metavar="S",
                    help="first seed (default 0)")
    cf.add_argument("--ticks", type=int, default=200, metavar="T",
                    help="controller ticks per scenario (default 200)")
    cf.add_argument("--engine", choices=_ENGINE_MULTI,
                    default="both",
                    help="engine(s) to replay under (default both = "
                         "scalar+vectorized; 'all' adds bulk; with two "
                         "or more, cross-engine bit-identity is checked)")
    cf.add_argument("--no-faults", action="store_true",
                    help="generate scenarios without fault schedules")
    cf.add_argument("--repro-dir", default=None, metavar="DIR",
                    help="shrink each failing seed's trace and write the "
                         "minimal JSONL repro into DIR")
    cr = checksub.add_parser(
        "replay",
        help="replay a JSONL trace (e.g. a committed repro) with oracles armed",
    )
    cr.add_argument("trace", metavar="FILE", help="JSONL trace file")
    cr.add_argument("--engine", choices=_ENGINE_MULTI,
                    default=None,
                    help="override the trace header's engine selection")

    p7 = sub.add_parser(
        "explain",
        help="print the causal derivation of one cpu.max write from a "
             "decision ledger (see docs/observability.md)",
    )
    p7.add_argument("--vm", default=None, help="VM name")
    p7.add_argument("--vcpu", type=int, default=None, help="vCPU index")
    p7.add_argument("--tick", type=int, default=None, help="controller tick")
    p7.add_argument("--move", default=None, metavar="VM",
                    help="explain why this VM was live-migrated (reads the "
                         "rebalance ledger instead of the decision ledger)")
    p7.add_argument("--round", type=int, default=None, metavar="N",
                    help="with --move: pin the rebalance round "
                         "(default: the VM's latest move)")
    p7.add_argument("--alert", default=None, metavar="SLO",
                    help="explain an alert transition of this SLO from an "
                         "alert ledger instead of a cpu.max write (e.g. "
                         "'guarantee' or 'anomaly:backend_errors_total')")
    p7.add_argument("--index", type=int, default=None, metavar="N",
                    help="with --alert: pin the N-th transition of that "
                         "SLO (default: the latest)")
    p7.add_argument("--ledger", default=None, metavar="FILE",
                    help="ledger JSONL file (default: <obs-dir>/ledger.jsonl, "
                         "<obs-dir>/rebalance.jsonl with --move, or "
                         "<obs-dir>/alerts.jsonl with --alert)")
    p7.add_argument("--obs-dir", default=None, metavar="DIR",
                    help="observability output directory of the run")

    p8 = sub.add_parser(
        "trace", help="observability trace tools (flight-recorder dumps)"
    )
    tracesub = p8.add_subparsers(dest="trace_command", required=True)
    tc = tracesub.add_parser(
        "convert",
        help="convert a flight-recorder crash dump into a replayable "
             "JSONL checking trace (feed it to 'repro check replay')",
    )
    tc.add_argument("dump", metavar="DUMP", help="flight_*.json dump file")
    tc.add_argument("-o", "--output", required=True, metavar="FILE",
                    help="JSONL trace to write")

    p10 = sub.add_parser(
        "rebalance",
        help="frequency-guarantee-aware cluster rebalancer (dry-run "
             "plans, node drains, chaos+churn runs; docs/rebalancing.md)",
    )
    rsub = p10.add_subparsers(dest="rebalance_command", required=True)
    rp = rsub.add_parser(
        "plan",
        help="dry-run: snapshot a seeded chaos cluster and print the "
             "scored move list without executing anything",
    )
    _add_chaos_flags(rp)
    rp.add_argument("--at", type=float, default=60.0, metavar="T",
                    help="simulated seconds of chaos+churn before the "
                         "snapshot (default 60)")
    rp.add_argument("--drain", action="append", default=[], metavar="NODE",
                    help="also plan evacuating NODE (repeatable)")
    rp.add_argument("--max-moves", type=int, default=16,
                    help="batch bound per round (default 16)")
    rd = rsub.add_parser(
        "drain",
        help="evacuate a node for maintenance and report when it is empty",
    )
    rd.add_argument("node", metavar="NODE", help="node id, e.g. node-3")
    _add_chaos_flags(rd)
    rd.add_argument("--duration", type=float, default=120.0,
                    help="simulated seconds to run (default 120)")
    rr = rsub.add_parser(
        "run",
        help="run the seeded chaos+churn scenario and report "
             "guarantee-violation time (optionally vs. the static baseline)",
    )
    _add_chaos_flags(rr)
    rr.add_argument("--duration", type=float, default=120.0,
                    help="simulated seconds to run (default 120)")
    rr.add_argument("--rebalance", dest="rebalance",
                    action="store_true", default=True,
                    help="enable the rebalance loop (default)")
    rr.add_argument("--no-rebalance", dest="rebalance", action="store_false",
                    help="static placement only")
    rr.add_argument("--rebalance-every", type=int, default=5, metavar="K",
                    help="planner period in control ticks (default 5)")
    rr.add_argument("--baseline", action="store_true",
                    help="also run the identical seeded scenario without "
                         "the rebalancer and print the comparison")
    rr.add_argument("--ledger", default=None, metavar="FILE",
                    help="write the rebalance ledger JSONL here "
                         "(for 'repro explain --move')")

    p11 = sub.add_parser(
        "bill",
        help="performance-based billing tools: metering demo, "
             "ledger-derived invoices, billing-oracle fuzz "
             "(docs/billing.md)",
    )
    billsub = p11.add_subparsers(dest="bill_command", required=True)
    bd = billsub.add_parser(
        "demo",
        help="run a small multi-tenant host with metering attached, "
             "audit it against the billing oracle, print the invoices",
    )
    bd.add_argument("--ticks", type=int, default=50)
    bd.add_argument("--vms", type=int, default=4, help="VMs to provision")
    bd.add_argument("--tenants", type=int, default=2,
                    help="tenants to spread the VMs over (default 2)")
    bd.add_argument("--seed", type=int, default=42)
    bd.add_argument("--engine", choices=_ENGINE_CHOICES, default="vectorized")
    bd.add_argument("--json", action="store_true",
                    help="emit invoices as JSON instead of tables")
    bd.add_argument("--per-vcpu", action="store_true",
                    help="one table row per vCPU instead of per VM")
    bd.add_argument("--metrics", action="store_true",
                    help="also print the Prometheus billing families")
    bv = billsub.add_parser(
        "derive",
        help="re-derive per-tenant invoices from a decision-ledger "
             "JSONL via the billing oracle (no live engine needed)",
    )
    bv.add_argument("ledger", metavar="FILE", help="ledger JSONL file")
    bv.add_argument("--node", default="node-0",
                    help="node label for the rendered invoices")
    bv.add_argument("--json", action="store_true",
                    help="emit invoices as JSON instead of tables")
    bf = billsub.add_parser(
        "fuzz",
        help="fuzzed multi-tenant metering runs with every invoice "
             "re-derived by the billing oracle (the billing-smoke gate)",
    )
    bf.add_argument("--seeds", type=int, default=5, metavar="N",
                    help="number of consecutive seeds to run (default 5)")
    bf.add_argument("--start-seed", type=int, default=0, metavar="S")
    bf.add_argument("--ticks", type=int, default=200, metavar="T",
                    help="controller ticks per scenario (default 200)")
    bf.add_argument("--tenants", type=int, default=3,
                    help="tenants per scenario (default 3)")
    bf.add_argument("--engine", choices=_ENGINE_MULTI, default="all",
                    help="engine(s) to meter under (default all)")
    bf.add_argument("--repro-dir", default=None, metavar="DIR",
                    help="shrink each failing seed's trace and write the "
                         "minimal JSONL repro into DIR")

    p12 = sub.add_parser(
        "slo",
        help="cluster SLO plane: burn-rate alert evaluation over fuzzed "
             "runs, live terminal dashboard (docs/observability.md)",
    )
    slosub = p12.add_subparsers(dest="slo_command", required=True)
    sle = slosub.add_parser(
        "eval",
        help="fuzzed multi-tenant runs with the SLO plane attached; "
             "asserts byte-identical alert ledgers across replays and "
             "bit-identical reports with the plane detached (the "
             "slo-smoke gate)",
    )
    sle.add_argument("--seeds", type=int, default=3, metavar="N",
                     help="number of consecutive seeds to run (default 3)")
    sle.add_argument("--start-seed", type=int, default=0, metavar="S")
    sle.add_argument("--ticks", type=int, default=150, metavar="T",
                     help="controller ticks per scenario (default 150)")
    sle.add_argument("--tenants", type=int, default=3,
                     help="tenants per scenario (default 3)")
    sle.add_argument("--engine", choices=_ENGINE_MULTI, default="all",
                     help="engine(s) to evaluate under (default all)")
    sle.add_argument("--out", default=None, metavar="DIR",
                     help="write per-seed alert ledgers and a summary "
                          "JSON into DIR (the CI artefact)")
    sle.add_argument("--no-determinism", dest="determinism",
                     action="store_false",
                     help="skip the byte-identical-replay check")
    sle.add_argument("--no-transparency", dest="transparency",
                     action="store_false",
                     help="skip the attached-vs-detached report check")
    slw = slosub.add_parser(
        "watch",
        help="tick a small demo cluster and render a terminal SLO "
             "dashboard (budgets, burn rates, firing alerts)",
    )
    slw.add_argument("--nodes", type=int, default=3,
                     help="demo cluster size (default 3)")
    slw.add_argument("--vms", type=int, default=4,
                     help="VMs per node (default 4)")
    slw.add_argument("--tenants", type=int, default=2,
                     help="tenants to spread the VMs over (default 2)")
    slw.add_argument("--ticks", type=int, default=60,
                     help="controller ticks to run (default 60)")
    slw.add_argument("--every", type=int, default=10, metavar="K",
                     help="dashboard refresh period in ticks (default 10)")
    slw.add_argument("--seed", type=int, default=42)
    slw.add_argument("--out", default=None, metavar="DIR",
                     help="also mirror the alert ledger to DIR/alerts.jsonl "
                          "(for 'repro explain --alert')")

    p9 = sub.add_parser(
        "serve-metrics",
        help="run a small simulated host and serve live Prometheus "
             "/metrics scrapes (span histograms included)",
    )
    p9.add_argument("--host", default="127.0.0.1")
    p9.add_argument("--port", type=int, default=9309)
    p9.add_argument("--vms", type=int, default=4, help="VMs to provision")
    p9.add_argument("--ticks", type=int, default=10,
                    help="controller ticks to pre-run before serving")
    p9.add_argument("--seed", type=int, default=42)
    p9.add_argument("--self-test", action="store_true",
                    help="bind an ephemeral port, perform one real "
                         "loopback scrape, validate the payload and exit")
    p9.add_argument("--cluster", type=int, default=0, metavar="N",
                    help="serve a small N-node NodeManager cluster instead "
                         "of a single host: the scrape composes the "
                         "cluster, billing, rebalance and SLO families")
    _add_controller_flags(p9)

    return parser


def _add_chaos_flags(parser: argparse.ArgumentParser) -> None:
    """Cluster-shape knobs shared by the ``rebalance`` subcommands."""
    parser.add_argument("--nodes", type=int, default=8,
                        help="cluster size (default 8)")
    parser.add_argument("--vms", type=int, default=300,
                        help="initial VM population (default 300)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--degrade-rate", type=float, default=0.05,
                        metavar="R",
                        help="chaos events per second cluster-wide "
                             "(default 0.05)")


def _add_controller_flags(parser: argparse.ArgumentParser) -> None:
    """Controller knobs shared by every command that builds a config
    (eval1, eval2, operator, serve-metrics) — defined once, here.

    ``None`` defaults mean "keep the paper's evaluation setting"; any
    value given is routed through
    :meth:`~repro.core.config.ControllerConfig.with_overrides` (via
    :func:`_build_config`), so an invalid combination fails with the
    config validation error rather than deep inside a run.
    """
    parser.add_argument("--period", type=float, default=None, metavar="S",
                        help="controller loop period in seconds (paper: 1.0)")
    parser.add_argument("--reserve-guarantee", action="store_true",
                        help="always reserve the full guarantee C_i "
                             "instead of the demand-gated Eq. 5")
    parser.add_argument("--auction-priority", choices=("credits", "frequency"),
                        default=None,
                        help="auction shopping order (paper: credits)")
    parser.add_argument("--engine", choices=_ENGINE_CHOICES,
                        default=None,
                        help="controller hot-path implementation: the "
                             "structure-of-arrays fast path (default), "
                             "the bulk array-backend path on top of it, "
                             "or the per-vCPU scalar oracle; reports are "
                             "bit-identical all three ways")
    parser.add_argument("--set", dest="config_sets", action="append",
                        default=[], metavar="KEY=VALUE",
                        help="override any ControllerConfig field by name "
                             "(repeatable; values are parsed as Python "
                             "literals, unknown keys are rejected)")
    parser.add_argument("--fault-plan", default=None, metavar="FILE",
                        help="inject faults from a JSON FaultPlan file "
                             "(chaos drill; see docs/faults.md)")
    parser.add_argument("--resilience", action="store_true",
                        help="enable the degraded-mode resilience policy "
                             "(implied by --fault-plan)")
    parser.add_argument("--snapshot-path", default=None, metavar="FILE",
                        help="persist controller state to FILE every "
                             "--snapshot-every ticks and auto-restore "
                             "from it on start")
    parser.add_argument("--snapshot-every", type=int, default=None, metavar="K",
                        help="ticks between periodic snapshots (default 10)")
    parser.add_argument("--invariants", action="store_true",
                        help="run the paper-equation invariant oracles "
                             "inline after every controller tick and fail "
                             "on any violation (off by default for perf)")
    parser.add_argument("--obs-dir", default=None, metavar="DIR",
                        help="enable observability — span tracing, decision "
                             "ledger, black-box flight recorder — writing "
                             "JSONL artefacts and crash dumps into DIR "
                             "(see docs/observability.md)")


def _config_overrides(args) -> dict:
    overrides = {}
    if args.period is not None:
        overrides["period_s"] = args.period
    if args.reserve_guarantee:
        overrides["reserve_guarantee"] = True
    if args.auction_priority is not None:
        overrides["auction_priority"] = args.auction_priority
    if args.engine is not None:
        overrides["engine"] = args.engine
    if args.fault_plan is not None:
        overrides["fault_plan_path"] = args.fault_plan
    if args.fault_plan is not None or args.resilience:
        from repro.core.resilience import ResiliencePolicy

        overrides["resilience"] = ResiliencePolicy()
    if args.snapshot_path is not None:
        overrides["snapshot_path"] = args.snapshot_path
    if args.snapshot_every is not None:
        overrides["snapshot_every_ticks"] = args.snapshot_every
    if args.invariants:
        overrides["check_invariants"] = True
    if getattr(args, "obs_dir", None) is not None:
        from repro.obs import ObsConfig

        overrides["observability"] = ObsConfig(out_dir=args.obs_dir)
    return overrides


def _parse_config_sets(pairs: List[str]) -> dict:
    """``--set KEY=VALUE`` pairs as an override dict.

    Values are parsed as Python literals (``--set period_s=2.0``,
    ``--set control_enabled=False``) with a plain-string fallback
    (``--set engine=bulk``).  Key validity is *not* checked here —
    :meth:`ControllerConfig.with_overrides` rejects unknown keys with
    the full field list in hand.
    """
    import ast

    overrides = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(
                f"repro: --set expects KEY=VALUE, got {pair!r}"
            )
        try:
            value = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            value = raw
        overrides[key] = value
    return overrides


def _build_config(args, base=None):
    """The one path from CLI flags to a validated ControllerConfig.

    Merges the dedicated flags (:func:`_config_overrides`) with any
    ``--set`` pairs and routes everything through
    :meth:`ControllerConfig.with_overrides`.  Returns ``base``
    unchanged (possibly ``None``) when no override was given, so
    callers that treat "no config" specially keep doing so.  Unknown
    keys and invalid combinations exit with a clear message instead of
    a traceback.
    """
    overrides = _config_overrides(args)
    overrides.update(_parse_config_sets(getattr(args, "config_sets", [])))
    if not overrides:
        return base
    from repro.core.config import ControllerConfig

    config = base if base is not None else ControllerConfig.paper_evaluation()
    try:
        return config.with_overrides(**overrides)
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"repro: invalid controller configuration: {exc}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.log_level is not None:
        from repro.obs.logging import configure_logging

        configure_logging(args.log_level, args.log_format)
    command = {
        "eval1": _cmd_eval1,
        "eval2": _cmd_eval2,
        "placement": _cmd_placement,
        "overhead": _cmd_overhead,
        "operator": _cmd_operator,
        "check": _cmd_check,
        "explain": _cmd_explain,
        "trace": _cmd_trace,
        "rebalance": _cmd_rebalance,
        "bill": _cmd_bill,
        "slo": _cmd_slo,
        "serve-metrics": _cmd_serve_metrics,
    }[args.command]
    return command(args)


# ---------------------------------------------------------------------------


def _configs(choice: str):
    if choice == "both":
        return [("A", False), ("B", True)]
    return [(choice, choice == "B")]


def _print_freq_tables(result, labels, step_s: float, chart: bool = False) -> None:
    series = {
        f"{label} MHz": result.group_freq_series(label) for label in labels
    }
    headers, rows = series_to_rows(series, step_s=step_s)
    print(render_table(headers, rows,
                       title=f"configuration {result.configuration}"))
    if chart:
        from repro.analysis.ascii_chart import chart_time_series

        print(chart_time_series(
            {name: (s.times, s.values) for name, s in series.items()},
            title=f"configuration {result.configuration}",
        ))
    print(f"  cross-core frequency std: {result.mean_core_freq_std_mhz:.1f} MHz")
    if result.configuration == "B":
        print(f"  controller iteration cost: {result.controller_overhead_s * 1e3:.2f} ms "
              f"(monitoring {result.monitor_overhead_s * 1e3:.2f} ms)")


def _cmd_eval1(args) -> int:
    from repro.sim.scenario import eval1_chetemi, eval1_chiclet

    builder = eval1_chetemi if args.node == "chetemi" else eval1_chiclet
    scenario = builder(
        duration=args.duration,
        time_scale=args.time_scale,
        dt=args.dt,
        run_to_completion=args.scores,
    )
    scenario.controller_config = _build_config(args, scenario.controller_config)
    for label, controlled in _configs(args.config):
        result = scenario.run(controlled=controlled)
        _print_freq_tables(
            result, ["small", "large"],
            step_s=50.0 * args.time_scale, chart=args.chart,
        )
        if args.scores:
            headers, rows = scores_rows(result.scores_by_group)
            print(render_table(headers, rows,
                               title=f"scores, configuration {label}"))
        print()
    return 0


def _cmd_eval2(args) -> int:
    from repro.sim.scenario import eval2_chetemi

    scenario = eval2_chetemi(
        duration=args.duration, time_scale=args.time_scale, dt=args.dt
    )
    scenario.controller_config = _build_config(args, scenario.controller_config)
    for _, controlled in _configs(args.config):
        result = scenario.run(controlled=controlled)
        _print_freq_tables(
            result,
            ["small", "medium", "large"],
            step_s=50.0 * args.time_scale,
            chart=args.chart,
        )
        print()
    return 0


def _cmd_placement(args) -> int:
    from repro.hw.cluster import Cluster
    from repro.placement.bestfit import BestFit
    from repro.placement.constraints import (
        CoreSplittingConstraint,
        VcpuCountConstraint,
    )
    from repro.placement.evaluator import evaluate, nodes_by_spec_used
    from repro.placement.request import paper_workload

    cluster = Cluster.paper_cluster()
    requests = paper_workload()
    rows = []
    for label, constraint in (
        ("vCPU count", VcpuCountConstraint()),
        (f"vCPU count x{args.consolidation}",
         VcpuCountConstraint(consolidation_factor=args.consolidation)),
        ("core splitting (Eq. 7)", CoreSplittingConstraint()),
    ):
        placement = BestFit(constraint).place(cluster, requests)
        stats = evaluate(placement)
        spec_counts = nodes_by_spec_used(placement)
        rows.append([
            label,
            f"{stats.nodes_used}/{stats.nodes_total}",
            stats.unplaced,
            f"{stats.max_mhz_load_fraction:.2f}",
            f"{spec_counts.get('chetemi', 0)}+{spec_counts.get('chiclet', 0)}",
        ])
    print(render_table(
        ["constraint", "nodes", "unplaced", "max load", "chetemi+chiclet"],
        rows,
        title="placement of 250 small + 50 medium + 100 large VMs",
    ))
    return 0


def _cmd_overhead(args) -> int:
    import numpy as np

    from repro.sim.scenario import eval1_chetemi

    sim = eval1_chetemi(duration=1.0, dt=0.5).build(controlled=True)
    for vm in sim.hypervisor.vms:
        vm.workload.start_time = 0.0
    sim.run(float(args.iterations))
    reports = sim.controller.reports
    stages = ("monitor", "estimate", "credits", "auction", "distribute", "enforce")
    rows = [
        [stage, f"{np.mean([getattr(r.timings, stage) for r in reports]) * 1e3:.3f}"]
        for stage in stages
    ]
    rows.append(["total", f"{sim.controller.mean_iteration_seconds() * 1e3:.3f}"])
    print(render_table(["stage", "mean ms/iteration"], rows,
                       title=f"controller overhead over {len(reports)} iterations "
                             f"(30 VMs / 80 vCPUs)"))
    stats = sim.controller.backend.stats
    op_rows = [
        [op, count, f"{count / max(len(reports), 1):.1f}"]
        for op, count in stats.as_dict().items()
    ]
    op_rows.append(["total", stats.total_ops, f"{stats.total_ops / max(len(reports), 1):.1f}"])
    print(render_table(["kernel-surface op", "count", "per iteration"], op_rows,
                       title="backend operation budget (batched)"))
    return 0


def _cmd_operator(args) -> int:
    from repro.hw.cluster import Cluster
    from repro.hw.nodespecs import CHETEMI
    from repro.placement.constraints import (
        CoreSplittingConstraint,
        VcpuCountConstraint,
    )
    from repro.sim.arrivals import CloudOperator, generate_arrivals
    from repro.sim.cluster_engine import ClusterSimulation
    from repro.virt.template import LARGE, MEDIUM, SMALL
    from repro.workloads.synthetic import ConstantWorkload

    def workload_for(event):
        return ConstantWorkload(event.template.vcpus, level=1.0)

    events = generate_arrivals(
        rate_per_s=args.rate,
        template_mix=[(SMALL, 5.0), (MEDIUM, 1.0), (LARGE, 2.0)],
        mean_lifetime_s=args.horizon / 2.0,
        horizon_s=args.horizon,
        seed=args.seed,
    )
    rows = []
    for label, constraint, controlled, admission in (
        ("Eq.7 + controller", CoreSplittingConstraint(), True, True),
        ("vCPU count, no capping", VcpuCountConstraint(), False, False),
        ("vCPU x2, no capping", VcpuCountConstraint(consolidation_factor=2.0), False, False),
    ):
        sim = ClusterSimulation(
            Cluster.from_counts({CHETEMI: 1}),
            controlled=controlled,
            dt=0.5,
            enforce_admission=admission,
            parallel=not args.serial,
            max_workers=args.workers,
            controller_config=_build_config(args),
        )
        outcome = CloudOperator(sim, constraint, workload_for).run(
            events, horizon_s=args.horizon
        )
        rows.append([
            label,
            f"{outcome.accepted}/{outcome.accepted + outcome.rejected}",
            f"{outcome.violation_rate * 100:.1f} %",
            len(outcome.vms_violated),
        ])
    print(render_table(
        ["admission policy", "accepted", "SLA violations", "VMs hit"],
        rows,
        title=f"operator study: {len(events)} arrivals over {args.horizon:.0f} s, 1 chetemi",
    ))
    return 0


def _cmd_check(args) -> int:
    if args.check_command == "fuzz":
        return _cmd_check_fuzz(args)
    return _cmd_check_replay(args)


def _cmd_check_fuzz(args) -> int:
    import os

    from repro.checking import fuzz_one, shrink_trace

    failures = 0
    engine_ticks = 0
    for seed in range(args.start_seed, args.start_seed + args.seeds):
        result = fuzz_one(
            seed,
            ticks=args.ticks,
            faults=not args.no_faults,
            engine=args.engine,
        )
        engine_ticks += result.engine_ticks
        if result.ok:
            continue
        failures += 1
        print(f"seed {seed}: FAIL at tick {result.result.violations[0].t:g}")
        for violation in result.result.violations:
            print(f"  {violation}")
        if args.repro_dir:
            os.makedirs(args.repro_dir, exist_ok=True)
            minimal = shrink_trace(result.trace)
            path = os.path.join(args.repro_dir, f"repro_seed{seed}.jsonl")
            minimal.save(path)
            print(f"  shrunk to {len(minimal.events)} events -> {path}")
    verdict = "FAIL" if failures else "ok"
    print(
        f"fuzz: {args.seeds} seeds x {args.ticks} ticks = "
        f"{engine_ticks} engine-ticks, {failures} failing seed(s) [{verdict}]"
    )
    return 1 if failures else 0


def _cmd_check_replay(args) -> int:
    from repro.checking import Trace, replay

    trace = Trace.load(args.trace)
    engines = None
    if args.engine is not None:
        from repro.checking.trace import ENGINES

        if args.engine == "both":
            engines = ("scalar", "vectorized")
        elif args.engine == "all":
            engines = ENGINES
        else:
            engines = (args.engine,)
    result = replay(trace, engines=engines, stop_at_first=False)
    for violation in result.violations:
        print(violation)
    verdict = "ok" if result.ok else "FAIL"
    print(
        f"replay: {result.ticks} tick(s) under {'+'.join(result.engines)}, "
        f"{len(result.violations)} violation(s) [{verdict}]"
    )
    return 0 if result.ok else 1


def _cmd_explain(args) -> int:
    import os

    if args.alert is not None:
        from repro.obs.slo import explain_alert_from_entries, load_alerts_jsonl

        path = args.ledger
        if path is None:
            if args.obs_dir is None:
                print("explain: need --ledger FILE or --obs-dir DIR",
                      file=sys.stderr)
                return 2
            path = os.path.join(args.obs_dir, "alerts.jsonl")
        if not os.path.exists(path):
            print(f"explain: no alert ledger at {path}", file=sys.stderr)
            return 2
        entries = load_alerts_jsonl(path)
        try:
            print(explain_alert_from_entries(entries, args.alert, args.index))
        except KeyError as exc:
            print(f"explain: {exc.args[0]}", file=sys.stderr)
            return 1
        return 0

    if args.move is not None:
        from repro.rebalance.ledger import (
            explain_move_from_entries,
            load_rebalance_jsonl,
        )

        path = args.ledger
        if path is None:
            if args.obs_dir is None:
                print("explain: need --ledger FILE or --obs-dir DIR",
                      file=sys.stderr)
                return 2
            path = os.path.join(args.obs_dir, "rebalance.jsonl")
        if not os.path.exists(path):
            print(f"explain: no rebalance ledger at {path}", file=sys.stderr)
            return 2
        entries = load_rebalance_jsonl(path)
        try:
            print(explain_move_from_entries(entries, args.move, args.round))
        except KeyError as exc:
            print(f"explain: {exc.args[0]}", file=sys.stderr)
            return 1
        return 0

    from repro.obs.ledger import explain_from_entries, load_jsonl

    if args.vm is None or args.vcpu is None or args.tick is None:
        print("explain: need --vm/--vcpu/--tick (cap derivation) or "
              "--move VM (migration derivation)", file=sys.stderr)
        return 2
    path = args.ledger
    if path is None:
        if args.obs_dir is None:
            print("explain: need --ledger FILE or --obs-dir DIR",
                  file=sys.stderr)
            return 2
        path = os.path.join(args.obs_dir, "ledger.jsonl")
    if not os.path.exists(path):
        print(f"explain: no ledger at {path}", file=sys.stderr)
        return 2
    entries = load_jsonl(path)
    try:
        print(explain_from_entries(entries, args.vm, args.vcpu, args.tick))
    except KeyError as exc:
        print(f"explain: {exc.args[0]}", file=sys.stderr)
        return 1
    return 0


# ---------------------------------------------------------------------------
# rebalance subcommands
# ---------------------------------------------------------------------------


def _chaos_cluster(args, *, duration: float):
    from repro.rebalance import ChaosConfig, ChurnChaosCluster

    return ChurnChaosCluster(ChaosConfig(
        nodes=args.nodes,
        duration_s=duration,
        seed=args.seed,
        initial_vms=args.vms,
        degrade_rate_per_s=args.degrade_rate,
    ))


def _cmd_rebalance(args) -> int:
    return {
        "plan": _cmd_rebalance_plan,
        "drain": _cmd_rebalance_drain,
        "run": _cmd_rebalance_run,
    }[args.rebalance_command](args)


def _cmd_rebalance_plan(args) -> int:
    from repro.rebalance import MigrationPlanner, PlannerConfig

    cluster = _chaos_cluster(args, duration=args.at)
    cluster.run()  # let chaos+churn build pressure before the snapshot
    view = cluster.rebalance_view()
    planner = MigrationPlanner(
        config=PlannerConfig(max_moves_per_round=args.max_moves)
    )
    try:
        plan = planner.plan(view, drain=args.drain, seed=args.seed)
    except KeyError as exc:
        print(f"rebalance plan: {exc.args[0]}", file=sys.stderr)
        return 2
    print(f"snapshot at t={view.t:g}: {len(view.nodes)} nodes, "
          f"{len(view.vms)} VMs, pressure {plan.pressure_before_mhz:.1f} MHz, "
          f"fragmentation {plan.fragmentation_before:.3f}")
    headers = ["vm", "from", "to", "goal", "MHz", "cost s", "score MHz/s"]
    rows = [
        [m.vm_name, m.source, m.target, m.reason,
         f"{m.demand_mhz:.0f}", f"{m.cost_s:.2f}", f"{m.score:.1f}"]
        for m in plan.moves
    ]
    print(render_table(headers, rows, title="planned moves (dry run)"))
    print(f"  planned pressure after: {plan.pressure_after_mhz:.1f} MHz; "
          f"total cost {plan.total_cost_s():.1f} s")
    if plan.skipped:
        skipped = ", ".join(
            f"{k}={v}" for k, v in sorted(plan.skipped.items())
        )
        print(f"  skipped: {skipped}")
    return 0


def _cmd_rebalance_drain(args) -> int:
    from repro.rebalance import MigrationPlanner, RebalanceLoop

    cluster = _chaos_cluster(args, duration=args.duration)
    if args.node not in cluster.nodes:
        print(f"rebalance drain: unknown node {args.node!r} "
              f"(cluster has node-0..node-{args.nodes - 1})", file=sys.stderr)
        return 2
    loop = RebalanceLoop(MigrationPlanner(), every=1, seed=args.seed)
    loop.request_drain(args.node)
    cluster.run(loop)
    remaining = len(cluster.nodes[args.node].vms)
    moves = loop.migrations_total.get("drain", 0)
    if remaining == 0:
        print(f"{args.node} drained: {moves} VM(s) evacuated in "
              f"{loop.rounds_total} round(s); safe to power off")
        return 0
    print(f"{args.node} NOT fully drained after {args.duration:g} s: "
          f"{remaining} VM(s) remain ({moves} moved) — run longer or "
          f"free capacity elsewhere", file=sys.stderr)
    return 1


def _cmd_rebalance_run(args) -> int:
    from repro.sim.scenario import ClusterScenario

    def scenario(rebalance: bool) -> ClusterScenario:
        return ClusterScenario(
            name=f"chaos-churn-{args.nodes}",
            nodes=args.nodes,
            vms=args.vms,
            duration=args.duration,
            seed=args.seed,
            degrade_rate_per_s=args.degrade_rate,
            rebalance=rebalance,
            rebalance_every=args.rebalance_every,
            ledger_path=args.ledger if rebalance else None,
        )

    result = scenario(args.rebalance).run()
    rows = [[
        "rebalanced" if args.rebalance else "static",
        f"{result.violation_vm_seconds:.0f}",
        f"{result.downtime_vm_seconds:.1f}",
        f"{result.total_bad_vm_seconds:.0f}",
        str(result.migrations),
    ]]
    if args.baseline and args.rebalance:
        base = scenario(False).run()
        rows.append([
            "static baseline",
            f"{base.violation_vm_seconds:.0f}",
            f"{base.downtime_vm_seconds:.1f}",
            f"{base.total_bad_vm_seconds:.0f}",
            str(base.migrations),
        ])
    headers = ["run", "violation VM-s", "downtime VM-s", "total VM-s",
               "migrations"]
    print(render_table(
        headers, rows,
        title=f"chaos+churn: {args.nodes} nodes, {args.vms} VMs, "
              f"{args.duration:g} s, seed {args.seed}",
    ))
    if args.baseline and args.rebalance:
        if result.total_bad_vm_seconds < base.total_bad_vm_seconds:
            ratio = base.total_bad_vm_seconds / max(
                result.total_bad_vm_seconds, 1e-9
            )
            print(f"  rebalancer reduced guarantee-violation time "
                  f"{ratio:.1f}x vs. static placement")
        else:
            print("  WARNING: rebalancer did not beat the static baseline")
    if args.ledger and args.rebalance:
        print(f"  ledger: {args.ledger} "
              f"(try: python -m repro explain --move <vm> --ledger {args.ledger})")
    return 0


def _cmd_trace(args) -> int:
    from repro.obs.flight_recorder import FlightRecorder, flight_dump_to_trace

    try:
        dump = FlightRecorder.load(args.dump)
    except FileNotFoundError:
        print(f"error: no such flight dump: {args.dump}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    trace = flight_dump_to_trace(dump)
    trace.save(args.output)
    frames = dump["frames"]
    print(
        f"converted {len(frames)} recorded tick(s) "
        f"(reason: {dump['reason']}) into {len(trace.events)} events "
        f"-> {args.output}"
    )
    print(f"replay with: python -m repro check replay {args.output}")
    return 0


# ---------------------------------------------------------------------------
# bill subcommands
# ---------------------------------------------------------------------------


def _cmd_bill(args) -> int:
    return {
        "demo": _cmd_bill_demo,
        "derive": _cmd_bill_derive,
        "fuzz": _cmd_bill_fuzz,
    }[args.bill_command](args)


def _cmd_bill_demo(args) -> int:
    import random

    from repro.billing import BillingEngine, invoices_to_json, render_invoices
    from repro.checking import audit_billing
    from repro.core.config import ControllerConfig
    from repro.core.controller import VirtualFrequencyController
    from repro.core.metrics_export import render_billing
    from repro.hw.node import Node
    from repro.hw.nodespecs import NodeSpec
    from repro.obs import ObsConfig, Observability
    from repro.virt.hypervisor import Hypervisor, VMTemplate

    spec = NodeSpec(
        name="billing-demo", cpu_model="demo CPU", sockets=1,
        cores_per_socket=2, threads_per_core=2, fmax_mhz=2400.0,
        fmin_mhz=1200.0, memory_mb=8 * 1024, freq_jitter_mhz=0.0,
    )
    node = Node(spec, seed=args.seed)
    hv = Hypervisor(node)
    cfg = ControllerConfig.paper_evaluation(check_invariants=True)
    ctrl = VirtualFrequencyController(
        node.fs, node.procfs, node.sysfs,
        num_cpus=spec.logical_cpus, fmax_mhz=spec.fmax_mhz, config=cfg,
    )
    hub = Observability(ObsConfig(
        tracing=False, ledger=True, flight_recorder_ticks=0,
        ledger_ring_ticks=args.ticks + 1,
    ))
    hub.bind(ctrl)
    ctrl.obs = hub
    BillingEngine.attach(ctrl, node_id=spec.name)
    rng = random.Random(args.seed)
    vms = []
    for k in range(args.vms):
        tenant = f"tenant-{k % max(args.tenants, 1)}"
        vfreq = 300.0 * (1 + k % 3)
        template = VMTemplate(
            f"demo-{k}", vcpus=2, vfreq_mhz=vfreq, tenant=tenant,
        )
        vm = hv.provision(template, template.name)
        ctrl.register_vm(vm.name, vfreq, tenant=tenant)
        vms.append(vm)
    for i in range(args.ticks):
        for vm in vms:
            vm.set_uniform_demand(rng.random())
        node.step(cfg.period_s)
        ctrl.tick(float(i + 1))
    violations = audit_billing(ctrl.billing, hub.ledger.ticks)
    invoices = ctrl.billing.invoices()
    if args.json:
        print(invoices_to_json(invoices))
    else:
        print(render_invoices(invoices, per_vcpu=args.per_vcpu))
    if args.metrics:
        print(render_billing(ctrl.billing))
    for violation in violations:
        print(violation)
    verdict = "FAIL" if violations else "ok"
    print(
        f"bill demo: {args.ticks} tick(s), {args.vms} VM(s), "
        f"{len(invoices)} invoice(s), oracle audit "
        f"{len(violations)} violation(s) [{verdict}]"
    )
    return 1 if violations else 0


def _cmd_bill_derive(args) -> int:
    import os

    from repro.billing import build_invoices, invoices_to_json, render_invoices
    from repro.checking import derive_billing
    from repro.obs.ledger import load_jsonl

    if not os.path.exists(args.ledger):
        print(f"bill derive: no ledger at {args.ledger}", file=sys.stderr)
        return 2
    entries = load_jsonl(args.ledger)
    derived = derive_billing(entries)
    invoices = build_invoices(derived.usage, derived.credits, node=args.node)
    if args.json:
        print(invoices_to_json(invoices))
    else:
        print(render_invoices(invoices))
    for violation in derived.violations:
        print(violation)
    verdict = "FAIL" if derived.violations else "ok"
    print(
        f"bill derive: {len(entries)} ledger tick(s) -> "
        f"{len(invoices)} invoice(s), "
        f"{len(derived.violations)} integrity violation(s) [{verdict}]"
    )
    return 1 if derived.violations else 0


def _cmd_bill_fuzz(args) -> int:
    import os

    from repro.checking import (
        billing_predicate,
        generate_trace,
        replay_with_billing,
        shrink_trace,
    )

    engines = None
    if args.engine == "both":
        engines = ("scalar", "vectorized")
    elif args.engine == "all":
        from repro.checking.trace import ENGINES

        engines = ENGINES
    elif args.engine in _ENGINE_CHOICES:
        engines = (args.engine,)
    failures = 0
    engine_ticks = 0
    for seed in range(args.start_seed, args.start_seed + args.seeds):
        trace = generate_trace(seed, ticks=args.ticks, tenants=args.tenants)
        result = replay_with_billing(trace, engines=engines)
        engine_ticks += result.replay.ticks * len(result.replay.engines)
        if result.ok:
            continue
        failures += 1
        all_violations = list(result.replay.violations) + result.violations
        print(f"seed {seed}: FAIL ({len(all_violations)} violation(s))")
        for violation in all_violations[:8]:
            print(f"  {violation}")
        if args.repro_dir:
            os.makedirs(args.repro_dir, exist_ok=True)
            if result.violations:
                minimal = shrink_trace(
                    trace, predicate=billing_predicate(engines=engines),
                )
            else:
                minimal = shrink_trace(trace)
            path = os.path.join(args.repro_dir, f"repro_seed{seed}.jsonl")
            minimal.save(path)
            print(f"  shrunk to {len(minimal.events)} events -> {path}")
    verdict = "FAIL" if failures else "ok"
    print(
        f"bill fuzz: {args.seeds} seeds x {args.ticks} ticks = "
        f"{engine_ticks} metered engine-ticks, every invoice line "
        f"re-derived by the oracle, {failures} failing seed(s) [{verdict}]"
    )
    return 1 if failures else 0


# ---------------------------------------------------------------------------
# slo subcommands
# ---------------------------------------------------------------------------


def _cmd_slo(args) -> int:
    return {
        "eval": _cmd_slo_eval,
        "watch": _cmd_slo_watch,
    }[args.slo_command](args)


def _multi_engines(choice: str):
    if choice == "both":
        return ("scalar", "vectorized")
    if choice == "all":
        from repro.checking.trace import ENGINES

        return ENGINES
    return (choice,)


def _cmd_slo_eval(args) -> int:
    """Fuzzed runs with the SLO plane attached, two gates armed:

    * **determinism** — replaying the identical trace twice yields
      byte-identical serialized alert-transition ledgers (the
      deterministic profile, ``wallclock=False``), and all engines
      produce the same stream;
    * **transparency** — report streams with the plane (and billing)
      attached are bit-identical to a detached replay, field for field.
    """
    import json
    import os

    from repro.billing import DEFAULT_PRICE_BOOK, BillingEngine
    from repro.checking import generate_trace
    from repro.checking.trace import _compare_reports, replay
    from repro.obs.slo import SLOConfig, SLOPlane

    engines = _multi_engines(args.engine)

    def run_attached(trace):
        """One attached replay; returns (result, planes-by-engine)."""
        planes = {}
        billing = {}

        def attach(controller, engine: str) -> None:
            bill = billing.get(engine)
            if bill is None:
                bill = billing[engine] = BillingEngine(DEFAULT_PRICE_BOOK)
            controller.billing = bill
            plane = planes.get(engine)
            if plane is None:
                plane = planes[engine] = SLOPlane(
                    SLOConfig(wallclock=False)
                )
            controller.slo = plane

        result = replay(
            trace, engines=engines, stop_at_first=False,
            collect_reports=args.transparency, attach=attach,
        )
        return result, planes

    def alert_stream(plane) -> str:
        return "\n".join(
            json.dumps(t, sort_keys=True) for t in plane.ledger.transitions
        )

    if args.out:
        os.makedirs(args.out, exist_ok=True)
    failures = 0
    summary = []
    for seed in range(args.start_seed, args.start_seed + args.seeds):
        trace = generate_trace(seed, ticks=args.ticks, tenants=args.tenants)
        problems = []
        result, planes = run_attached(trace)
        if result.violations:
            problems.append(
                f"{len(result.violations)} oracle violation(s), first: "
                f"{result.violations[0]}"
            )
        streams = {e: alert_stream(planes[e]) for e in result.engines}
        first = result.engines[0]
        for engine in result.engines[1:]:
            if streams[engine] != streams[first]:
                problems.append(
                    f"alert streams differ across engines "
                    f"({first} vs {engine})"
                )
        if args.determinism:
            result2, planes2 = run_attached(trace)
            for engine in result.engines:
                if alert_stream(planes2[engine]) != streams[engine]:
                    problems.append(
                        f"[{engine}] alert ledger not byte-identical "
                        f"across identical replays"
                    )
        if args.transparency:
            detached = replay(
                trace, engines=engines, stop_at_first=False,
                collect_reports=True,
            )
            for engine in result.engines:
                pairs = zip(result.reports[engine], detached.reports[engine])
                for tick, (attached_r, detached_r) in enumerate(pairs, 1):
                    diffs = _compare_reports(
                        attached_r, detached_r,
                        (f"{engine}+slo", engine), float(tick),
                    )
                    if diffs:
                        problems.append(
                            f"[{engine}] report diverged with the plane "
                            f"attached at tick {tick}: {diffs[0]}"
                        )
                        break
        transitions = len(planes[first].ledger.transitions)
        firing = len(planes[first].firing_alerts())
        status = "FAIL" if problems else "ok"
        print(
            f"seed {seed}: {result.ticks} ticks x {len(result.engines)} "
            f"engine(s), {transitions} alert transition(s), {firing} "
            f"still firing [{status}]"
        )
        for problem in problems:
            print(f"  {problem}")
        if args.out:
            path = os.path.join(args.out, f"alerts_seed{seed}.jsonl")
            with open(path, "w") as fh:
                if streams[first]:
                    fh.write(streams[first] + "\n")
        summary.append({
            "seed": seed,
            "ticks": result.ticks,
            "engines": list(result.engines),
            "transitions": transitions,
            "firing": firing,
            "problems": problems,
        })
        failures += bool(problems)
    if args.out:
        with open(os.path.join(args.out, "summary.json"), "w") as fh:
            json.dump({"seeds": summary, "failures": failures}, fh,
                      indent=2, sort_keys=True)
            fh.write("\n")
    verdict = "FAIL" if failures else "ok"
    checks = ["cross-engine"]
    if args.determinism:
        checks.append("replay-determinism")
    if args.transparency:
        checks.append("transparency")
    print(
        f"slo eval: {args.seeds} seed(s) x {args.ticks} ticks under "
        f"{'/'.join(engines)}, checks: {', '.join(checks)}, "
        f"{failures} failing seed(s) [{verdict}]"
    )
    return 1 if failures else 0


def _demo_cluster(nodes: int, vms_per_node: int, tenants: int, seed: int,
                  cfg, *, name: str = "slo-demo"):
    """N single-socket demo nodes under one NodeManager, billing
    attached per node.  Returns (manager, per-node VM lists)."""
    from repro.billing import BillingEngine
    from repro.core.controller import VirtualFrequencyController
    from repro.hw.node import Node
    from repro.hw.nodespecs import NodeSpec
    from repro.sim.node_manager import NodeManager
    from repro.virt.hypervisor import Hypervisor, VMTemplate

    manager = NodeManager(parallel=False)
    cluster_vms = {}
    template = VMTemplate("demo", vcpus=2, vfreq_mhz=600.0)
    k = 0
    for n in range(nodes):
        node_id = f"node-{n}"
        spec = NodeSpec(
            name=f"{name}-{n}", cpu_model="demo CPU", sockets=1,
            cores_per_socket=2, threads_per_core=2, fmax_mhz=2400.0,
            fmin_mhz=1200.0, memory_mb=8 * 1024, freq_jitter_mhz=0.0,
        )
        node = Node(spec, seed=seed + n)
        hv = Hypervisor(node)
        ctrl = VirtualFrequencyController(
            node.fs, node.procfs, node.sysfs,
            num_cpus=spec.logical_cpus, fmax_mhz=spec.fmax_mhz, config=cfg,
        )
        BillingEngine.attach(ctrl, node_id=node_id)
        vms = []
        for _ in range(vms_per_node):
            vm = hv.provision(template, f"demo-{k}")
            ctrl.register_vm(
                vm.name, template.vfreq_mhz,
                tenant=f"tenant-{k % tenants}",
            )
            vms.append(vm)
            k += 1
        manager.add_node(node_id, ctrl)
        cluster_vms[node_id] = (node, vms)
    return manager, cluster_vms


def _cmd_slo_watch(args) -> int:
    import random

    from repro.core.config import ControllerConfig
    from repro.obs.slo import SLOConfig, SLOPlane

    cfg = ControllerConfig.paper_evaluation()
    plane = SLOPlane(SLOConfig(period_s=cfg.period_s, out_dir=args.out))
    manager, cluster_vms = _demo_cluster(
        args.nodes, args.vms, args.tenants, args.seed, cfg
    )
    rng = random.Random(args.seed)
    try:
        for tick in range(1, args.ticks + 1):
            t = float(tick)
            for node_id in sorted(cluster_vms):
                node, vms = cluster_vms[node_id]
                for vm in vms:
                    vm.set_uniform_demand(rng.random())
                node.step(cfg.period_s)
            manager.tick(t)
            transitions = plane.observe_cluster(manager, tick, t=t)
            for transition in transitions:
                print(
                    f"  tick {tick}: {transition['state'].upper()} "
                    f"{transition['slo']} {transition['labels']} "
                    f"({transition['severity']})"
                )
            if tick % args.every == 0 or tick == args.ticks:
                _print_slo_dashboard(plane, tick)
    finally:
        manager.close()
        plane.close()
    if args.out:
        print(f"alert ledger: {plane.ledger.path} "
              f"(try: python -m repro explain --alert <slo> "
              f"--obs-dir {args.out})")
    return 0


def _print_slo_dashboard(plane, tick: int) -> None:
    rows = []
    for spec in plane.specs:
        for labelset in plane._label_sets(spec):
            labels = dict(labelset)
            label_text = ",".join(
                f"{k}={v}" for k, v in sorted(labels.items())
            ) or "-"
            firing = [
                severity for severity in ("page", "ticket")
                if (spec.name, labelset, severity) in plane._firing
            ]
            rows.append([
                spec.name,
                label_text,
                f"{spec.objective:.3%}",
                f"{plane.error_budget_remaining(spec, labels):.1%}",
                f"{plane.burn_rate(spec, 60, labels):.2f}x",
                f"{plane.burn_rate(spec, 5, labels):.2f}x",
                ",".join(firing) if firing else "ok",
            ])
    print(render_table(
        ["slo", "labels", "objective", "budget left", "burn 60t",
         "burn 5t", "state"],
        rows,
        title=f"SLO dashboard @ tick {tick} "
              f"({plane.transitions_total} transition(s) so far)",
    ))


def _cmd_serve_metrics(args) -> int:
    import random
    import time
    import urllib.request

    from repro.core.config import ControllerConfig
    from repro.core.metrics_export import (
        MetricsBuffer,
        render_billing,
        render_controller,
        render_node_manager,
        render_rebalance,
        render_slo,
    )
    from repro.obs import MetricsServer, ObsConfig
    from repro.obs.slo import SLOConfig, SLOPlane

    base = ControllerConfig.paper_evaluation(
        observability=ObsConfig(out_dir=args.obs_dir),
        check_invariants=True,
    )
    cfg = _build_config(args, base)
    rng = random.Random(args.seed)

    if args.cluster > 0:
        manager, cluster_vms = _demo_cluster(
            args.cluster, args.vms, 2, args.seed, cfg, name="metrics-demo"
        )
        plane = SLOPlane(SLOConfig(period_s=cfg.period_s))
        loop = _metrics_demo_rebalance(args.seed)
        plane.observe_rebalance(loop)

        def one_tick(i: int) -> None:
            for node_id in sorted(cluster_vms):
                node, vms = cluster_vms[node_id]
                for vm in vms:
                    vm.set_uniform_demand(rng.random())
                node.step(cfg.period_s)
            manager.tick(float(i))
            plane.observe_cluster(manager, i, t=float(i))

        def scrape() -> str:
            # One exposition page: manager aggregates, every node's
            # controller (which folds its billing engine in), the
            # rebalance loop, and the cluster SLO plane.
            buf = MetricsBuffer()
            render_node_manager(manager, buf)
            for node_id in sorted(manager.controllers):
                render_controller(
                    manager.controllers[node_id], buf, {"node": node_id}
                )
            render_rebalance(loop, buf)
            render_slo(plane, buf)
            return buf.text()

        close = manager.close
    else:
        from repro.billing import BillingEngine
        from repro.core.controller import VirtualFrequencyController
        from repro.hw.node import Node
        from repro.hw.nodespecs import NodeSpec
        from repro.virt.hypervisor import Hypervisor, VMTemplate

        spec = NodeSpec(
            name="metrics-demo", cpu_model="demo CPU", sockets=1,
            cores_per_socket=2, threads_per_core=2, fmax_mhz=2400.0,
            fmin_mhz=1200.0, memory_mb=8 * 1024, freq_jitter_mhz=0.0,
        )
        node = Node(spec, seed=args.seed)
        hv = Hypervisor(node)
        ctrl = VirtualFrequencyController(
            node.fs, node.procfs, node.sysfs,
            num_cpus=spec.logical_cpus, fmax_mhz=spec.fmax_mhz, config=cfg,
        )
        BillingEngine.attach(ctrl)
        SLOPlane.attach(ctrl)
        template = VMTemplate("demo", vcpus=2, vfreq_mhz=600.0)
        vms = []
        for k in range(args.vms):
            vm = hv.provision(template, f"demo-{k}")
            ctrl.register_vm(vm.name, template.vfreq_mhz,
                             tenant=f"tenant-{k % 2}")
            vms.append(vm)

        def one_tick(i: int) -> None:
            for vm in vms:
                vm.set_uniform_demand(rng.random())
            node.step(cfg.period_s)
            ctrl.tick(float(i))

        def scrape() -> str:
            # render_controller folds the attached SLO plane in itself.
            buf = MetricsBuffer()
            render_controller(ctrl, buf)
            render_billing(ctrl.billing, buf)
            return buf.text()

        def close() -> None:
            if ctrl.obs is not None:
                ctrl.obs.close()

    for i in range(args.ticks):
        one_tick(i + 1)
    server = MetricsServer(
        scrape,
        host=args.host,
        port=0 if args.self_test else args.port,
    ).start()
    print(f"serving {server.address}")
    if args.self_test:
        try:
            with urllib.request.urlopen(server.address) as resp:
                ctype = resp.headers.get("Content-Type", "")
                body = resp.read().decode()
        finally:
            server.stop()
            close()
        assert "text/plain" in ctype, f"unexpected content type {ctype!r}"
        helps = [ln.split()[2] for ln in body.splitlines()
                 if ln.startswith("# HELP")]
        assert len(helps) == len(set(helps)), "duplicate HELP family"
        families = [
            "vfreq_vcpu_consumed_cycles",
            "vfreq_stage_seconds",
            "vfreq_invariant_checks_total",
            "vfreq_backend_ops_total",
            "vfreq_revenue_total",
            "vfreq_sla_credits_total",
            "vfreq_slo_error_budget_remaining",
            "vfreq_alerts_firing",
            "vfreq_alert_transitions_total",
        ]
        if args.cluster > 0:
            families += [
                "vfreq_rebalance_rounds_total",
                "vfreq_migrations_total",
            ]
        else:
            families.append("vfreq_span_seconds")
        for family in families:
            assert f"# HELP {family} " in body, f"family missing: {family}"
        print(
            f"self-test ok: scraped {len(body.splitlines())} lines, "
            f"{len(helps)} families, ticks={args.ticks}"
            + (f", nodes={args.cluster}" if args.cluster else "")
        )
        return 0
    tick = args.ticks
    try:
        while True:
            time.sleep(cfg.period_s)
            tick += 1
            one_tick(tick)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        close()
    return 0


def _metrics_demo_rebalance(seed: int):
    """A short seeded chaos+churn burn so the ``--cluster`` endpoint's
    rebalance families carry real counters and histograms."""
    from repro.rebalance import (
        ChaosConfig,
        ChurnChaosCluster,
        MigrationPlanner,
        RebalanceLoop,
    )

    chaos = ChurnChaosCluster(ChaosConfig(
        nodes=4, duration_s=30.0, seed=seed, initial_vms=40,
        degrade_rate_per_s=0.02,
    ))
    loop = RebalanceLoop(MigrationPlanner(), every=5, seed=seed)
    chaos.run(loop)
    return loop


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
