"""Delta-debugging trace shrinker (Zeller's ddmin over event lists).

Given a trace that fails replay (any invariant violation or cross-engine
divergence), :func:`shrink_trace` finds a 1-minimal sub-sequence of its
events that still fails: removing any single remaining event makes the
failure disappear.  Minimal repros are what get committed under
``tests/checking/repros/`` — a shrunken trace is usually a handful of
lines that a human can read as a story ("provision one VM, tick twice").

Replay skips events whose VM no longer exists, so *every* subset of a
valid trace is itself a valid trace — the precondition that lets ddmin
delete freely without constructing nonsense scenarios.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.checking.trace import Trace, replay

Predicate = Callable[[Trace], bool]


def default_predicate(trace: Trace) -> bool:
    """True iff the trace still fails (what the shrinker preserves)."""
    return not replay(trace).ok


def shrink_trace(
    trace: Trace,
    predicate: Optional[Predicate] = None,
    *,
    max_rounds: int = 1000,
    log: Optional[Callable[[str], None]] = None,
) -> Trace:
    """Reduce ``trace`` to a 1-minimal failing trace.

    ``predicate(candidate)`` must return True while the candidate still
    exhibits the failure; it defaults to "replay reports any violation".
    Raises ``ValueError`` if the input trace itself does not fail —
    shrinking a passing trace would silently return garbage.
    """
    predicate = predicate or default_predicate
    if not predicate(trace):
        raise ValueError("trace does not fail the predicate; nothing to shrink")

    events: List[dict] = list(trace.events)
    probes = 0

    def fails(candidate_events: List[dict]) -> bool:
        nonlocal probes
        probes += 1
        return predicate(trace.with_events(candidate_events))

    # Classic ddmin: try dropping chunks at granularity n, then the
    # complements of chunks; refine granularity when stuck.
    n = 2
    rounds = 0
    while len(events) >= 2 and rounds < max_rounds:
        rounds += 1
        chunk = max(1, len(events) // n)
        reduced = False
        start = 0
        while start < len(events):
            candidate = events[:start] + events[start + chunk:]
            if candidate and fails(candidate):
                events = candidate
                n = max(n - 1, 2)
                reduced = True
                if log:
                    log(f"shrink: {len(events)} events (round {rounds})")
                break
            start += chunk
        if reduced:
            continue
        if n >= len(events):
            break
        n = min(len(events), n * 2)

    # Final 1-minimality sweep: ddmin guarantees it at loop exit, but a
    # cheap explicit pass keeps us honest if max_rounds cut things short.
    i = 0
    while i < len(events) and len(events) > 1:
        candidate = events[:i] + events[i + 1:]
        if candidate and fails(candidate):
            events = candidate
        else:
            i += 1

    if log:
        log(f"shrink: done — {len(events)} events after {probes} probes")
    return trace.with_events(events)
