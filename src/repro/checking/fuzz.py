"""Seeded scenario fuzzer for the virtual-frequency controller.

One seed deterministically produces one :class:`~repro.checking.trace.Trace`
— VM churn, QoS renegotiation, workload bursts, controller restarts and a
windowed fault schedule — which :func:`~repro.checking.trace.replay` then
runs under **both** engines with the full invariant catalogue asserted
after every tick and cross-engine bit-identity checked.

Two design rules keep failures shrinkable:

* **All randomness happens at generation time.**  Demand levels, churn
  decisions and fault windows are drawn here from ``random.Random(seed)``
  and written into the trace as concrete values, so replay consumes no
  RNG at all and deleting events cannot shift later draws.
* **Fault specs are deterministic** (``probability=1.0``, bounded tick
  windows, no ``clock_jitter``/``crash``).  Probabilistic specs consume
  the plan RNG per opportunity, which would let the two engine replicas'
  fault streams drift apart after any divergence and turn one real bug
  into a wall of noise.

Generated scenarios respect the paper's Eq. 7 admission bound — the
committed budget Σᵢ vcpusᵢ · vfreqᵢ never exceeds host capacity — since
the Eq. 2 guarantee (and therefore several oracles) is only promised for
admissible VM sets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.checking.trace import ENGINES, ReplayResult, Trace, replay

#: Fuzz-host shape (small on purpose: contention shows up fast).
HOST_CORES = 2
HOST_THREADS_PER_CORE = 2
HOST_FMAX_MHZ = 2400.0
HOST_CAPACITY_MHZ = HOST_CORES * HOST_THREADS_PER_CORE * HOST_FMAX_MHZ

#: Smallest vfreq the fuzzer hands out (MHz).
MIN_VFREQ = 100.0

#: Deterministic fault templates the generator picks from.  Each entry
#: is (kind, target, error) — windows are drawn per trace.
_FAULT_MENU = (
    ("read_error", "*/cpu.stat", "EIO"),
    ("write_error", "*/cpu.max", "EBUSY"),
    ("freeze", "*/cpu.stat", "EIO"),
    ("tid_vanish", "tid:*", "ESRCH"),
    ("freq_error", "core:*", "EIO"),
)


def _fault_plan_dict(rng: random.Random, ticks: int) -> Optional[Dict]:
    """A JSON-ready deterministic FaultPlan, or ``None`` (half the time)."""
    if rng.random() < 0.5:
        return None
    specs = []
    for _ in range(rng.randint(1, 3)):
        kind, target, error = rng.choice(_FAULT_MENU)
        start = rng.randrange(max(1, ticks))
        length = rng.randint(1, min(20, max(2, ticks // 4)))
        specs.append(
            {
                "kind": kind,
                "target": target,
                "start_tick": start,
                "end_tick": start + length,
                "probability": 1.0,
                "error": error,
                "jitter_frac": 0.0,
            }
        )
    return {"seed": rng.randrange(2**31), "specs": specs}


def generate_trace(
    seed: int,
    *,
    ticks: int = 200,
    max_vms: int = 6,
    faults: bool = True,
    restarts: bool = True,
    engine: str = "both",
    tenants: int = 0,
) -> Trace:
    """Deterministically generate one fuzz scenario for ``seed``.

    ``tenants > 0`` spreads provisioned VMs round-robin over that many
    named tenants and stamps each provision with an initial demand
    level — the multi-tenant billing fuzz mode.  ``tenants=0`` (the
    default) emits byte-identical traces to every earlier release: the
    tenant path draws from the RNG only when enabled.
    """
    if engine not in ENGINES + ("both", "all"):
        raise ValueError(f"unknown engine {engine!r}")
    rng = random.Random(seed)
    plan = _fault_plan_dict(rng, ticks) if faults else None
    trace = Trace(
        header=Trace.make_header(
            seed=seed,
            cores=HOST_CORES,
            threads_per_core=HOST_THREADS_PER_CORE,
            fmax_mhz=HOST_FMAX_MHZ,
            resilience=plan is not None or rng.random() < 0.3,
            fault_plan=plan,
            engine=engine,
        )
    )
    events = trace.events
    committed: Dict[str, float] = {}  # vm -> vcpus * vfreq (Eq. 7 ledger)
    shapes: Dict[str, int] = {}  # vm -> vcpus
    next_vm = 0

    def provision() -> None:
        nonlocal next_vm
        if len(committed) >= max_vms:
            return
        vcpus = rng.randint(1, 2)
        headroom = HOST_CAPACITY_MHZ - sum(committed.values())
        top = min(1200.0, headroom / vcpus)
        if top < MIN_VFREQ:
            return
        vfreq = round(rng.uniform(MIN_VFREQ, top), 1)
        name = f"vm{next_vm}"
        event = {"kind": "provision", "vm": name, "vcpus": vcpus, "vfreq": vfreq}
        if tenants > 0:
            event["tenant"] = f"t{next_vm % tenants}"
            event["level"] = round(rng.random(), 3)
        next_vm += 1
        events.append(event)
        committed[name] = vcpus * vfreq
        shapes[name] = vcpus

    def destroy() -> None:
        if not committed:
            return
        name = rng.choice(sorted(committed))
        events.append({"kind": "destroy", "vm": name})
        del committed[name]
        del shapes[name]

    def renegotiate() -> None:
        if not committed:
            return
        name = rng.choice(sorted(committed))
        vcpus = shapes[name]
        headroom = HOST_CAPACITY_MHZ - sum(committed.values()) + committed[name]
        top = min(1500.0, headroom / vcpus)
        if top < MIN_VFREQ:
            return
        vfreq = round(rng.uniform(MIN_VFREQ, top), 1)
        events.append({"kind": "set_vfreq", "vm": name, "vfreq": vfreq})
        committed[name] = vcpus * vfreq

    for _ in range(rng.randint(1, 3)):
        provision()

    for _ in range(ticks):
        roll = rng.random()
        if roll < 0.08:
            provision()
        elif roll < 0.12:
            destroy()
        elif roll < 0.18:
            renegotiate()
        elif restarts and roll < 0.195:
            events.append({"kind": "restart"})
        if rng.random() < 0.05:
            # Correlated burst: every VM slams to saturation at once —
            # the regime Eq. 2 is promised to survive.
            for name in sorted(committed):
                events.append({"kind": "demand", "vm": name, "level": 1.0})
        else:
            for name in sorted(committed):
                if rng.random() < 0.3:
                    events.append(
                        {
                            "kind": "demand",
                            "vm": name,
                            "level": round(rng.random(), 3),
                        }
                    )
        events.append({"kind": "tick"})
    return trace


@dataclass
class FuzzResult:
    """One seed's outcome: its trace plus the replay verdict."""

    seed: int
    trace: Trace
    result: ReplayResult

    @property
    def ok(self) -> bool:
        return self.result.ok

    @property
    def engine_ticks(self) -> int:
        """Ticks executed, summed over engine replicas."""
        return self.result.ticks * len(self.result.engines)


def fuzz_one(seed: int, *, ticks: int = 200, **gen_kwargs) -> FuzzResult:
    """Generate and replay one seeded scenario with oracles armed."""
    trace = generate_trace(seed, ticks=ticks, **gen_kwargs)
    return FuzzResult(seed=seed, trace=trace, result=replay(trace))
