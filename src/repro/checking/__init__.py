"""Correctness subsystem: paper-equation oracles, fuzzing, shrinking.

Three layers, each usable on its own:

* :mod:`repro.checking.invariants` — independent tick-level oracles that
  recompute the paper's Eqs. 2, 5 and 6 (plus ledger, enforcement and
  resilience safety envelopes) directly from controller state and
  compare against what the tick reported;
* :mod:`repro.checking.fuzz` — a fully seeded scenario fuzzer that
  generates VM churn, QoS renegotiation, workload bursts and fault
  schedules as a concrete event trace, then replays it under both
  controller engines with every invariant asserted each tick and
  cross-engine bit-identity checked;
* :mod:`repro.checking.shrink` — a delta-debugging shrinker that reduces
  a failing trace to a minimal JSONL repro, replayable via
  ``tests/checking/test_repros.py`` or ``python -m repro check replay``;
* :mod:`repro.checking.billing_oracle` — an independent re-derivation
  of every invoice line from the decision ledger, compared bit-exactly
  against the live billing engine (``docs/billing.md``).

See ``docs/testing.md`` for the workflow and the invariant catalogue.
"""

from repro.checking.billing_oracle import (
    audit_billing,
    billing_predicate,
    derive_billing,
    replay_with_billing,
)
from repro.checking.invariants import (
    INVARIANTS,
    InvariantChecker,
    InvariantViolationError,
    Violation,
)
from repro.checking.fuzz import FuzzResult, fuzz_one, generate_trace
from repro.checking.shrink import shrink_trace
from repro.checking.trace import ReplayResult, Trace, replay

__all__ = [
    "INVARIANTS",
    "InvariantChecker",
    "InvariantViolationError",
    "Violation",
    "FuzzResult",
    "audit_billing",
    "billing_predicate",
    "derive_billing",
    "fuzz_one",
    "generate_trace",
    "replay_with_billing",
    "shrink_trace",
    "ReplayResult",
    "Trace",
    "replay",
]
