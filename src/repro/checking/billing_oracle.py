"""The billing oracle: invoices re-derived from the decision ledger.

The billing engine must never certify its own arithmetic — the same
rule :func:`~repro.checking.invariants.check_plan_admissible` applies
to the rebalance planner.  This module recomputes every billable
quantity **independently**, starting from the PR 5 decision ledger
(the bit-exact causal record of every enforcement decision) and
walking the full chain again::

    recompute_allocation  ->  cycle-class split  ->  MHz-seconds  ->  price

Only the :class:`~repro.billing.pricing.PriceBook` *data* (tier bounds
and rate constants) is shared with the engine; every formula — tier
lookup, spot rate, allocation decomposition, SLA-credit condition —
is re-implemented inline here.  Because both sides are pure float
arithmetic over the same ledger-visible operands in the same
accumulation order, the comparison in :func:`audit_billing` is **exact
equality**, not tolerance-based: a single ULP of drift (or a planted
mutant) is a violation at the first tick it appears.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.billing.pricing import DEFAULT_PRICE_BOOK, PriceBook
from repro.checking.invariants import Violation
from repro.checking.trace import Trace, replay
from repro.obs.ledger import recompute_allocation

if False:  # pragma: no cover - typing-only import, avoids a hard cycle
    from repro.billing.meter import BillingEngine
    from repro.core.controller import ControllerReport


@dataclass
class DerivedBilling:
    """The oracle's independently recomputed accumulators.

    Shapes mirror :class:`~repro.billing.meter.UsageMeter` exactly —
    ``usage`` keyed ``(tenant, vm, vcpu, tier, kind)``, ``credits``
    keyed ``(tenant, vm, vcpu, tier)``, per-tick trails keyed by the
    1-based control tick — so :func:`audit_billing` can compare field
    for field.  ``violations`` holds ledger-integrity failures found
    *while* deriving (a recorded allocation that does not re-derive
    from its own causal chain poisons every price downstream).
    """

    usage: Dict[Tuple, List[float]] = field(default_factory=dict)
    credits: Dict[Tuple, List[float]] = field(default_factory=dict)
    tick_revenue: Dict[int, float] = field(default_factory=dict)
    tick_credits: Dict[int, float] = field(default_factory=dict)
    violations: List[Violation] = field(default_factory=list)


def _accumulate(store: Dict, key: Tuple, cycles: float, mhz_s: float,
                amount: float) -> None:
    cell = store.get(key)
    if cell is None:
        store[key] = [cycles, mhz_s, amount]
    else:
        cell[0] += cycles
        cell[1] += mhz_s
        cell[2] += amount


def derive_billing(
    entries: Sequence[Dict],
    book: Optional[PriceBook] = None,
) -> DerivedBilling:
    """Recompute all billing state from ledger tick entries alone.

    ``entries`` are decision-ledger records (``DecisionLedger.ticks``
    or :func:`repro.obs.ledger.load_jsonl` output) in recording order —
    ticks ascending, and after a controller restart the tick counter
    legitimately rewinds, in which case charges accumulate onto the
    same 1-based tick keys exactly as the live meter's did.
    """
    book = book if book is not None else DEFAULT_PRICE_BOOK
    derived = DerivedBilling()
    for entry in entries:
        meta = entry["meta"]
        tick = int(meta["tick"]) + 1  # ledger ticks are 0-based
        fmax_mhz = float(meta["fmax_mhz"])
        p_us = float(meta["p_us"])
        tenants = meta.get("tenants", {})
        # Inline re-derivations — deliberately NOT calls into
        # repro.billing: one MHz-second per cycle factor ...
        factor = fmax_mhz * 1e-6
        # ... and the scarcity-scaled spot rate.
        market_initial = float(meta["market_initial"])
        market_left = float(meta["market_left"])
        if market_initial <= 0:
            fraction_sold = 0.0
        else:
            fraction_sold = (market_initial - market_left) / market_initial
        spot = book.spot_base_rate * (1.0 + book.spot_slope * fraction_sold)
        revenue = derived.tick_revenue.get(tick, 0.0)
        refunds = derived.tick_credits.get(tick, 0.0)
        for decision in entry["decisions"]:
            vfreq = decision["vfreq"]
            allocation = decision["allocation"]
            if vfreq is None or allocation is None:
                continue
            vm = decision["vm"]
            vcpu = int(decision["vcpu"])
            tenant = tenants.get(vm, "default")
            base = decision["base"]
            purchased = decision["purchased"]
            fallback = decision["fallback"]
            # Ledger integrity first: the recorded allocation must
            # re-derive from its own recorded causal chain (PR 5's
            # guarantee) before any price built on it can be trusted.
            if fallback is not None or base is not None:
                rederived = recompute_allocation(decision, p_us)
                if rederived != allocation:
                    derived.violations.append(Violation(
                        "billing_ledger_integrity",
                        f"allocation {allocation!r} does not re-derive "
                        f"from its causal chain (got {rederived!r})",
                        t=float(tick), vm=vm, path=decision.get("path"),
                    ))
            # Inline tier lookup (first tier whose bound covers vfreq).
            tier = None
            for candidate in book.tiers:
                if vfreq <= candidate.max_vfreq_mhz:
                    tier = candidate
                    break
            assert tier is not None  # last tier bound is inf
            # Inline decomposition into billable cycle classes.
            if fallback is not None or base is None:
                guaranteed_c, purchased_c, free_c = allocation, 0.0, 0.0
            else:
                guaranteed_c = min(base, allocation)
                purchased_c = min(purchased, allocation - guaranteed_c)
                free_c = allocation - guaranteed_c - purchased_c
            for kind, cycles, rate in (
                ("guaranteed", guaranteed_c, tier.rate),
                ("purchased", purchased_c, spot),
                ("free", free_c, spot * book.free_discount),
            ):
                if cycles == 0.0:
                    continue
                amount = cycles * factor * rate
                _accumulate(
                    derived.usage, (tenant, vm, vcpu, tier.name, kind),
                    cycles, cycles * factor, amount,
                )
                revenue += amount
            # Inline SLA-credit condition: a vCPU whose demand saturates
            # its Eq. 2 guarantee (or is unobservable — degraded mode)
            # yet is allocated below it earns a refund on the shortfall.
            guarantee = decision["guarantee"]
            estimate = decision["estimate"]
            if (
                guarantee is not None
                and allocation < guarantee
                and (estimate is None or estimate >= guarantee)
            ):
                shortfall = guarantee - allocation
                amount = (
                    shortfall * factor * tier.rate * book.sla_refund_multiplier
                )
                _accumulate(
                    derived.credits, (tenant, vm, vcpu, tier.name),
                    shortfall, shortfall * factor, amount,
                )
                refunds += amount
        derived.tick_revenue[tick] = revenue
        derived.tick_credits[tick] = refunds
    return derived


def audit_billing(
    engine: "BillingEngine",
    entries: Sequence[Dict],
    book: Optional[PriceBook] = None,
) -> List[Violation]:
    """Compare a live billing engine against the oracle, exactly.

    Per-tick revenue/credit trails are checked first, in ascending
    tick order, so the leading violation names the **earliest** tick
    the engine's arithmetic went wrong — the property the mutant-catch
    tests pin ("caught at tick 1").  Then the full usage and credit
    accumulators are compared key by key.  Every comparison is ``!=``
    on raw floats: agreement must be bit-exact.
    """
    book = book if book is not None else engine.book
    derived = derive_billing(entries, book)
    violations: List[Violation] = list(derived.violations)
    meter = engine.meter
    for label, ours, theirs in (
        ("billing_tick_revenue", derived.tick_revenue, meter.tick_revenue),
        ("billing_tick_credits", derived.tick_credits, meter.tick_credits),
    ):
        for tick in sorted(set(ours) | set(theirs)):
            a = ours.get(tick)
            b = theirs.get(tick)
            if a != b:
                violations.append(Violation(
                    label,
                    f"oracle re-derives {a!r} from the ledger, "
                    f"engine metered {b!r}",
                    t=float(tick),
                ))
    for label, ours, theirs in (
        ("billing_usage", derived.usage, meter.usage),
        ("billing_credits", derived.credits, meter.credits),
    ):
        for key in sorted(set(ours) | set(theirs)):
            a = ours.get(key)
            b = theirs.get(key)
            if a != b:
                violations.append(Violation(
                    label,
                    f"{key}: oracle {a!r} != engine {b!r}",
                    vm=key[1],
                ))
    return violations


# ---------------------------------------------------------------------------
# Replay harness: trace -> metered replicas -> audited invoices
# ---------------------------------------------------------------------------


@dataclass
class BillingAuditResult:
    """One audited replay: the replay verdict plus per-engine audits."""

    replay: "object"  # ReplayResult; typed loosely to keep imports flat
    #: Billing violations from every engine's audit, engine-tagged.
    violations: List[Violation]
    #: Live billing engines, keyed by engine name (invoices on demand).
    billing: Dict[str, "BillingEngine"]
    #: The ledger entries each audit consumed, keyed by engine name.
    ledgers: Dict[str, List[Dict]]

    @property
    def ok(self) -> bool:
        return self.replay.ok and not self.violations


def replay_with_billing(
    trace: Trace,
    *,
    engines: Optional[Sequence[str]] = None,
    book: Optional[PriceBook] = None,
    collect_reports: bool = False,
) -> BillingAuditResult:
    """Replay a trace with metering attached, then audit every engine.

    Each replica gets a ledger-only observability hub (ring sized to
    the whole trace, so the audit sees every tick) and a
    :class:`~repro.billing.meter.BillingEngine`.  Both survive
    ``restart`` events: the replay ``attach`` hook re-binds the *same*
    hub and engine to the recovered controller, so charges accrued
    before a crash stay on the invoice — and stay auditable, because
    the ledger ring spans the restart too.
    """
    from repro.billing.meter import BillingEngine
    from repro.obs.config import ObsConfig
    from repro.obs.hub import Observability

    book = book if book is not None else DEFAULT_PRICE_BOOK
    hubs: Dict[str, Observability] = {}
    billing: Dict[str, BillingEngine] = {}
    ring_ticks = max(trace.ticks, 1) + 1

    def attach(controller, engine: str) -> None:
        hub = hubs.get(engine)
        if hub is None:
            hub = hubs[engine] = Observability(ObsConfig(
                tracing=False,
                ledger=True,
                flight_recorder_ticks=0,
                ledger_ring_ticks=ring_ticks,
            ))
        hub.bind(controller)
        controller.obs = hub
        bill = billing.get(engine)
        if bill is None:
            bill = billing[engine] = BillingEngine(
                book, node_id=f"fuzz-{engine}"
            )
        controller.billing = bill

    result = replay(
        trace,
        engines=engines,
        stop_at_first=True,
        collect_reports=collect_reports,
        attach=attach,
    )
    violations: List[Violation] = []
    ledgers: Dict[str, List[Dict]] = {}
    for engine in result.engines:
        entries = hubs[engine].ledger.ticks
        ledgers[engine] = entries
        for v in audit_billing(billing[engine], entries, book):
            violations.append(Violation(
                v.invariant, f"[{engine}] {v.message}",
                t=v.t, path=v.path, vm=v.vm,
            ))
    return BillingAuditResult(
        replay=result,
        violations=violations,
        billing=billing,
        ledgers=ledgers,
    )


def billing_predicate(
    *,
    engines: Optional[Sequence[str]] = None,
    book: Optional[PriceBook] = None,
) -> Callable[[Trace], bool]:
    """A shrink predicate: "this trace still produces a billing bug".

    Pass the result to :func:`repro.checking.shrink.shrink_trace` as
    ``predicate=`` — it holds iff the audited replay reports at least
    one *billing* violation (plain invariant failures don't count, so
    shrinking a billing repro cannot drift onto an unrelated bug).
    """

    def predicate(candidate: Trace) -> bool:
        return bool(
            replay_with_billing(
                candidate, engines=engines, book=book
            ).violations
        )

    return predicate
