"""Event traces: the fuzzer's scenario format and its replayer.

A :class:`Trace` is a header plus a flat list of events — everything a
scenario did, written down concretely (demand levels included), so a
replay needs **no randomness**: the trace alone reproduces the run
bit-for-bit.  That property is what makes delta-debugging work — the
shrinker can delete any subset of events and replay the remainder.

Serialised as JSONL (one JSON object per line, header first), the same
format ``python -m repro check replay`` consumes and
``tests/checking/test_repros.py`` auto-collects:

.. code-block:: text

    {"kind": "header", "version": 1, "seed": 7, "cores": 2, ...}
    {"kind": "provision", "vm": "fz-0", "vcpus": 2, "vfreq": 500.0}
    {"kind": "demand", "vm": "fz-0", "level": 0.73}
    {"kind": "tick"}
    {"kind": "set_vfreq", "vm": "fz-0", "vfreq": 900.0}
    {"kind": "restart"}
    {"kind": "tick"}

Event kinds: ``provision`` / ``destroy`` (VM churn), ``set_vfreq`` (QoS
renegotiation), ``demand`` (uniform per-VM demand level for the next
tick), ``restart`` (snapshot the controller and restore onto a fresh
instance — the crash-recovery path), ``tick`` (advance the node by one
controller period and run one iteration).  Events referring to VMs that
do not (or already) exist are skipped silently: a shrunken trace stays
replayable no matter which events the shrinker removed.

Replay drives one *replica* per requested engine — separate node,
hypervisor and controller built from the same header — applies every
event to all replicas, runs the full invariant catalogue after every
tick, and (with two replicas) checks cross-engine bit-identity of every
report field the operators consume.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.checking.invariants import InvariantChecker, Violation
from repro.core.config import ControllerConfig
from repro.core.controller import ControllerReport, VirtualFrequencyController
from repro.core.resilience import ResiliencePolicy
from repro.hw.node import Node
from repro.hw.nodespecs import NodeSpec
from repro.virt.hypervisor import Hypervisor
from repro.virt.template import VMTemplate

TRACE_VERSION = 1

#: Engines a trace can run under.
ENGINES: Tuple[str, ...] = ("scalar", "vectorized", "bulk")


@dataclass
class Trace:
    """A fuzzing scenario: header dict + concrete event list."""

    header: Dict
    events: List[Dict] = field(default_factory=list)

    # -- construction ---------------------------------------------------------

    @classmethod
    def make_header(
        cls,
        *,
        seed: int = 0,
        cores: int = 2,
        threads_per_core: int = 2,
        fmax_mhz: float = 2400.0,
        resilience: bool = False,
        fault_plan: Optional[Dict] = None,
        engine: str = "both",
    ) -> Dict:
        return {
            "kind": "header",
            "version": TRACE_VERSION,
            "seed": seed,
            "cores": cores,
            "threads_per_core": threads_per_core,
            "fmax_mhz": fmax_mhz,
            "resilience": resilience,
            "fault_plan": fault_plan,
            "engine": engine,
        }

    def with_events(self, events: Sequence[Dict]) -> "Trace":
        """A copy holding ``events`` (the shrinker's probe constructor)."""
        return Trace(header=dict(self.header), events=list(events))

    @property
    def ticks(self) -> int:
        return sum(1 for e in self.events if e.get("kind") == "tick")

    # -- persistence ----------------------------------------------------------

    def to_jsonl(self) -> str:
        lines = [json.dumps(self.header, sort_keys=True)]
        lines += [json.dumps(e, sort_keys=True) for e in self.events]
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, payload: str) -> "Trace":
        rows = [json.loads(line) for line in payload.splitlines() if line.strip()]
        if not rows or rows[0].get("kind") != "header":
            raise ValueError("trace must start with a header line")
        header = rows[0]
        version = header.get("version")
        if version != TRACE_VERSION:
            raise ValueError(f"unsupported trace version {version!r}")
        return cls(header=header, events=rows[1:])

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())

    @classmethod
    def load(cls, path: str) -> "Trace":
        with open(path) as fh:
            return cls.from_jsonl(fh.read())


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------


@dataclass
class ReplayResult:
    """Outcome of one trace replay."""

    ticks: int
    violations: List[Violation]
    engines: Tuple[str, ...]
    #: Per-engine reports, only kept when ``collect_reports=True``.
    reports: Dict[str, List[ControllerReport]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations


class _Replica:
    """One engine's closed-loop host: node + hypervisor + controller."""

    def __init__(
        self,
        trace: Trace,
        engine: str,
        attach: Optional[Callable[[VirtualFrequencyController, str], None]] = None,
    ) -> None:
        h = trace.header
        spec = NodeSpec(
            name="fuzz",
            cpu_model="fuzz host",
            sockets=1,
            cores_per_socket=int(h.get("cores", 2)),
            threads_per_core=int(h.get("threads_per_core", 2)),
            fmax_mhz=float(h.get("fmax_mhz", 2400.0)),
            fmin_mhz=float(h.get("fmax_mhz", 2400.0)) / 2.0,
            memory_mb=64 * 1024,
            freq_jitter_mhz=0.0,
        )
        self.node = Node(spec, seed=int(h.get("seed", 0)))
        self.hypervisor = Hypervisor(self.node, enforce_admission=False)
        resilience = (
            ResiliencePolicy(stale_sample_max_age=1, degraded_after_ticks=3)
            if h.get("resilience") or h.get("fault_plan")
            else None
        )
        self.config = ControllerConfig.paper_evaluation(
            engine=engine, resilience=resilience
        )
        backend = None
        if h.get("fault_plan"):
            from repro.faults import FaultInjector, FaultPlan

            plan = FaultPlan.from_json(json.dumps(h["fault_plan"]))
            backend = FaultInjector(
                plan, self.node.fs, self.node.procfs, self.node.sysfs
            )
        self.controller = self._make_controller(backend)
        self.checker = InvariantChecker(self.controller)
        self.templates: Dict[str, VMTemplate] = {}
        #: Optional instrumentation hook (obs hub, billing engine); also
        #: re-invoked after every ``restart`` event so attachments can
        #: re-bind to the freshly restored controller instance.
        self._attach = attach
        if attach is not None:
            attach(self.controller, engine)

    def _make_controller(self, backend) -> VirtualFrequencyController:
        spec = self.node.spec
        if backend is not None:
            return VirtualFrequencyController(
                backend,
                num_cpus=spec.logical_cpus,
                fmax_mhz=spec.fmax_mhz,
                config=self.config,
            )
        return VirtualFrequencyController(
            self.node.fs,
            self.node.procfs,
            self.node.sysfs,
            num_cpus=spec.logical_cpus,
            fmax_mhz=spec.fmax_mhz,
            config=self.config,
        )

    # -- event handlers -------------------------------------------------------

    def apply(self, event: Dict) -> None:
        kind = event["kind"]
        vms = self.hypervisor._vms
        if kind == "provision":
            name = event["vm"]
            if name in vms:
                return
            template = VMTemplate(
                name=f"fz-{event['vcpus']}c",
                vcpus=int(event["vcpus"]),
                vfreq_mhz=float(event["vfreq"]),
                tenant=event.get("tenant", "default"),
            )
            vm = self.hypervisor.provision(template, name)
            self.controller.register_vm(
                vm.name, template.vfreq_mhz, tenant=event.get("tenant")
            )
            self.templates[name] = template
            # Optional initial demand, so a billing repro can express
            # "provision a busy VM" as a single event.
            if "level" in event:
                vm.set_uniform_demand(float(event["level"]))
        elif kind == "destroy":
            name = event["vm"]
            if name not in vms:
                return
            self.controller.unregister_vm(name)
            self.hypervisor.destroy(name)
            self.templates.pop(name, None)
        elif kind == "set_vfreq":
            name = event["vm"]
            if name not in vms:
                return
            self.controller.set_vfreq(name, float(event["vfreq"]))
        elif kind == "demand":
            name = event["vm"]
            if name not in vms:
                return
            vms[name].set_uniform_demand(float(event["level"]))
        elif kind == "restart":
            self._restart()
        else:
            raise ValueError(f"unknown trace event kind {kind!r}")

    def _restart(self) -> None:
        """Controller crash + recovery: snapshot, rebuild, restore.

        The new instance reuses the old backend (and so any active
        FaultInjector keeps its tick position — a restart does not
        rewind the fault schedule).
        """
        from repro.core.snapshot import restore, snapshot

        state = snapshot(self.controller)
        self.controller = self._make_controller(self.controller.backend)
        restore(self.controller, state)
        self.checker = InvariantChecker(self.controller)
        if self._attach is not None:
            # After restore, so attachments re-bind to the recovered
            # wallets/registries (a billing engine keeps its meter —
            # usage accrued before the crash stays billed).
            self._attach(self.controller, self.config.engine)

    def tick(self, t: float) -> Tuple[ControllerReport, List[Violation]]:
        self.node.step(self.config.period_s)
        report = self.controller.tick(t)
        violations = self.checker.check(report)
        # keep_reports stays on (the oracles need report.decisions), but a
        # 100k-tick fuzz run must not hold 100k reports alive.
        if len(self.controller.reports) > 8:
            del self.controller.reports[:-2]
        return report, violations


def _compare_reports(
    a: ControllerReport, b: ControllerReport, engines: Tuple[str, str], t: float
) -> List[Violation]:
    """Cross-engine bit-identity of every operator-visible report field."""
    diffs: List[str] = []
    if a.allocations != b.allocations:
        diffs.append("allocations")
    if a.wallets != b.wallets:
        diffs.append("wallets")
    if a.market_initial != b.market_initial:
        diffs.append("market_initial")
    if a.freely_distributed != b.freely_distributed:
        diffs.append("freely_distributed")
    if a.free_shares != b.free_shares:
        diffs.append("free_shares")
    if a.degraded != b.degraded:
        diffs.append("degraded")
    da = {p: (d.estimate_cycles, d.trend, d.case) for p, d in a.decisions.items()}
    db = {p: (d.estimate_cycles, d.trend, d.case) for p, d in b.decisions.items()}
    if da != db:
        diffs.append("decisions")
    if (a.auction is None) != (b.auction is None):
        diffs.append("auction presence")
    elif a.auction is not None:
        if a.auction.purchased != b.auction.purchased:
            diffs.append("auction.purchased")
        if a.auction.market_left != b.auction.market_left:
            diffs.append("auction.market_left")
        if a.auction.rounds != b.auction.rounds:
            diffs.append("auction.rounds")
        if a.auction.spent_per_vm != b.auction.spent_per_vm:
            diffs.append("auction.spent_per_vm")
    if not diffs:
        return []
    return [Violation(
        "engine_identity",
        f"{engines[0]} and {engines[1]} reports differ in: "
        + ", ".join(diffs),
        t=t,
    )]


def replay(
    trace: Trace,
    *,
    engines: Optional[Sequence[str]] = None,
    stop_at_first: bool = True,
    collect_reports: bool = False,
    attach: Optional[Callable[[VirtualFrequencyController, str], None]] = None,
) -> ReplayResult:
    """Replay a trace under one or more engines, oracles armed.

    ``engines`` defaults to the header's ``engine`` field: ``"both"``
    runs scalar and vectorised in lockstep (the historical pairing —
    old traces keep their meaning), ``"all"`` runs every engine
    including bulk, and with two or more replicas cross-engine
    bit-identity is checked each tick, first replica versus each other.
    With ``stop_at_first`` (the default) replay returns at the first
    violating tick — what the shrinker's predicate wants; pass
    ``False`` to collect everything.

    ``attach`` is an optional ``(controller, engine) -> None`` hook
    invoked on every replica controller at construction *and* after
    each ``restart`` event's restore — the wiring point for
    observability hubs and billing engines (which must survive a
    controller crash with their accumulated state intact).
    """
    if engines is None:
        requested = trace.header.get("engine", "both")
        if requested == "both":
            engines = ("scalar", "vectorized")
        elif requested == "all":
            engines = ENGINES
        else:
            engines = (requested,)
    engines = tuple(engines)
    for engine in engines:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}")
    replicas = [_Replica(trace, engine, attach) for engine in engines]
    violations: List[Violation] = []
    reports: Dict[str, List[ControllerReport]] = {e: [] for e in engines}
    ticks = 0
    for event in trace.events:
        if event.get("kind") != "tick":
            for replica in replicas:
                replica.apply(event)
            continue
        ticks += 1
        t = float(ticks)
        tick_reports = []
        for replica in replicas:
            report, tick_violations = replica.tick(t)
            tick_reports.append(report)
            violations.extend(tick_violations)
            if collect_reports:
                reports[replica.config.engine].append(report)
        if len(tick_reports) >= 2:
            for other, other_report in enumerate(tick_reports[1:], start=1):
                violations.extend(_compare_reports(
                    tick_reports[0], other_report,
                    (engines[0], engines[other]), t,
                ))
        if violations and stop_at_first:
            break
    return ReplayResult(
        ticks=ticks,
        violations=violations,
        engines=engines,
        reports=reports if collect_reports else {},
    )
