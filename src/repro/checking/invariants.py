"""Tick-level invariant oracles for the controller (paper Eqs. 2, 5, 6).

Every function here *recomputes* a guarantee of the paper's design
directly from controller state and the tick's observations, then
compares against what the tick actually decided — an independent
implementation of the equations, deliberately written in plain per-path
Python so a bug shared between the scalar and vectorised engines (or
introduced by a future refactor of either) still trips the oracle.

Invariant catalogue (names are stable — tests, docs and the
``vfreq_invariant_violations_total`` metric label refer to them):

``eq2_guarantee``
    A vCPU whose estimated demand reaches its Eq. 2 guarantee ``C_i``
    must be allocated at least ``C_i``: the guarantee is uncondit-
    ionally honoured for saturated demand (§III-B3).
``eq5_base_cap``
    Every allocation stays within the Eq. 5 envelope: at least the base
    capping ``min(e, C_i)`` (the auction and free distribution only
    add), at most ``min(e, p_us)`` when the vCPU wants more than its
    base, never above one core's cycles ``p_us``.
``eq6_market``
    The reported market equals the recomputed Eq. 6 value
    ``max(0, C_m^MAX - Σ base)``; auction bookkeeping conserves cycles
    (``Σ purchased + market_left = market``); the free distribution
    never hands out more than the auction left over.
``free_distribution``
    Stage-5 bookkeeping: recorded shares are positive, target allocated
    paths, sum exactly to ``freely_distributed``, and every healthy
    allocation reconstructs as ``min(base + purchased + free, p_us)`` —
    the same causal chain the decision ledger (:mod:`repro.obs.ledger`)
    records and ``repro explain`` prints.
``budget``
    Total cycles allocated to observed, non-degraded vCPUs never exceed
    host capacity ``C_m^MAX`` (Eq. 1) — or, on a host over-committed
    beyond Eq. 7, the sum of their guarantees.  The market can
    over-sell only through a bug; this is the oracle that catches it.
``ledger``
    Credit wallets are never negative, never exceed the configured
    credit cap, and evolve exactly as Eq. 4 accrual minus auction
    spending predicts from the previous tick's balances.
``enforcement``
    Every allocation the tick decided is consistent with the quota the
    backend holds in force: ``cpu.max`` content inverts (through the
    enforcer's scaling and kernel floor) to the allocated cycles,
    except for paths whose write failed and is tracked for retry.
``resilience_fallback``
    Degraded-mode fallback caps stay within bounds: exactly the Eq. 2
    guarantee under ``degraded_action="guarantee"``, never above one
    core's cycles, never negative.
``samples``
    Monitoring sanity: consumptions and frequency estimates are finite
    and non-negative.

The checker is *stateful* only for the ledger delta (previous wallets);
call :meth:`InvariantChecker.resync` after a snapshot restore.

Numeric tolerance: oracles compare in cycles (1 cycle = 1 µs of CPU per
period) with an absolute tolerance of ``TOL = 1e-3`` cycles — far below
any real decision (the kernel quota floor alone is 1 000 cycles) yet
loose enough to absorb the float reassociation between an incremental
wallet and its recomputed total.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.core.units import cycles_per_period, period_us

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.controller import ControllerReport, VirtualFrequencyController

#: Absolute comparison tolerance, cycles (µs of CPU per period).
TOL = 1e-3


@dataclass(frozen=True)
class Violation:
    """One broken invariant at one tick."""

    invariant: str
    message: str
    t: float = 0.0
    path: Optional[str] = None
    vm: Optional[str] = None

    def __str__(self) -> str:
        where = self.path or self.vm or ""
        where = f" [{where}]" if where else ""
        return f"t={self.t:g} {self.invariant}{where}: {self.message}"


class InvariantViolationError(AssertionError):
    """Raised by a controller running with ``check_invariants=True``."""

    def __init__(self, violations: List[Violation]) -> None:
        self.violations = violations
        lines = "\n  ".join(str(v) for v in violations)
        super().__init__(
            f"{len(violations)} invariant violation(s):\n  {lines}"
        )


@dataclass
class TickContext:
    """Everything one oracle pass needs, precomputed once per tick."""

    controller: "VirtualFrequencyController"
    report: "ControllerReport"
    p_us: float
    total_cycles: float
    #: Eq. 2 guarantee per sampled/allocated vCPU path.
    guarantees: Dict[str, float]
    #: Stage-2 estimate per path (empty when the report kept no decisions).
    estimates: Dict[str, float]
    #: Recomputed Eq. 5 base capping per path (empty without estimates).
    base: Dict[str, float]
    #: Paths held at a degraded-mode fallback cap this tick.
    degraded: frozenset
    #: Wallet balances at the end of the previous tick.
    prev_wallets: Dict[str, float]


def _make_context(
    controller: "VirtualFrequencyController",
    report: "ControllerReport",
    prev_wallets: Dict[str, float],
) -> TickContext:
    cfg = controller.config
    p_us = period_us(cfg.period_s)
    guarantees: Dict[str, float] = {}
    vm_of: Dict[str, str] = {}
    for s in report.samples:
        vm_of[s.cgroup_path] = s.vm_name
    for path in set(vm_of) | set(report.allocations):
        vm = vm_of.get(path)
        if vm is None:
            vm = _vm_of_path(controller, path)
        if vm is not None and vm in controller._vm_vfreq:
            guarantees[path] = controller.guaranteed_cycles_of(vm)
    estimates = {
        path: d.estimate_cycles for path, d in report.decisions.items()
    }
    base: Dict[str, float] = {}
    for path, e in estimates.items():
        g = guarantees.get(path)
        if g is None:
            continue
        b = min(e, g)
        if cfg.reserve_guarantee:
            b = max(b, g)
        base[path] = b
    return TickContext(
        controller=controller,
        report=report,
        p_us=p_us,
        total_cycles=cycles_per_period(cfg.period_s, controller.num_cpus),
        guarantees=guarantees,
        estimates=estimates,
        base=base,
        degraded=frozenset(report.degraded),
        prev_wallets=prev_wallets,
    )


def _vm_of_path(controller: "VirtualFrequencyController", path: str) -> Optional[str]:
    from repro.core.backend import vm_component

    return vm_component(path, controller.machine_slice)


# ---------------------------------------------------------------------------
# The oracles.  Each takes a TickContext and returns violations.
# ---------------------------------------------------------------------------


def check_eq2_guarantee(ctx: TickContext) -> List[Violation]:
    """Eq. 2: saturated demand (e >= C_i) receives at least C_i."""
    out: List[Violation] = []
    for path, e in ctx.estimates.items():
        if path in ctx.degraded or path not in ctx.report.allocations:
            continue
        g = ctx.guarantees.get(path)
        if g is None or e < g - TOL:
            continue
        alloc = ctx.report.allocations[path]
        if alloc < g - TOL:
            out.append(Violation(
                "eq2_guarantee",
                f"estimate {e:.3f} >= guarantee {g:.3f} but allocation "
                f"is only {alloc:.3f}",
                t=ctx.report.t, path=path,
            ))
    return out


def check_eq5_base_cap(ctx: TickContext) -> List[Violation]:
    """Eq. 5 envelope: base <= allocation <= min(max(base, e), p_us)."""
    out: List[Violation] = []
    for path, alloc in ctx.report.allocations.items():
        if path in ctx.degraded:
            continue
        if alloc < -TOL:
            out.append(Violation(
                "eq5_base_cap", f"negative allocation {alloc:.3f}",
                t=ctx.report.t, path=path,
            ))
        if alloc > ctx.p_us + TOL:
            out.append(Violation(
                "eq5_base_cap",
                f"allocation {alloc:.3f} exceeds one core's cycles "
                f"{ctx.p_us:.0f}",
                t=ctx.report.t, path=path,
            ))
        b = ctx.base.get(path)
        if b is None:
            continue  # no decision kept for this path
        e = ctx.estimates[path]
        if alloc < b - TOL:
            out.append(Violation(
                "eq5_base_cap",
                f"allocation {alloc:.3f} below Eq. 5 base capping {b:.3f}",
                t=ctx.report.t, path=path,
            ))
        ceiling = min(max(b, e), ctx.p_us)
        if alloc > ceiling + TOL:
            out.append(Violation(
                "eq5_base_cap",
                f"allocation {alloc:.3f} above demand ceiling {ceiling:.3f} "
                f"(estimate {e:.3f})",
                t=ctx.report.t, path=path,
            ))
    return out


def check_eq6_market(ctx: TickContext) -> List[Violation]:
    """Eq. 6 recomputation + auction/distribution cycle conservation."""
    report = ctx.report
    out: List[Violation] = []
    if ctx.base and len(ctx.base) == len(report.allocations) - len(ctx.degraded):
        recomputed = max(0.0, ctx.total_cycles - math.fsum(ctx.base.values()))
        if abs(recomputed - report.market_initial) > TOL:
            out.append(Violation(
                "eq6_market",
                f"reported market {report.market_initial:.3f} != recomputed "
                f"Eq. 6 market {recomputed:.3f}",
                t=report.t,
            ))
    outcome = report.auction
    if outcome is not None:
        sold = math.fsum(outcome.purchased.values())
        if abs(report.market_initial - sold - outcome.market_left) > TOL:
            out.append(Violation(
                "eq6_market",
                f"auction does not conserve cycles: market "
                f"{report.market_initial:.3f} - sold {sold:.3f} != left "
                f"{outcome.market_left:.3f}",
                t=report.t,
            ))
        spent = math.fsum(outcome.spent_per_vm.values())
        if abs(spent - sold) > TOL:
            out.append(Violation(
                "eq6_market",
                f"credits spent {spent:.3f} != cycles sold {sold:.3f}",
                t=report.t,
            ))
        if report.freely_distributed > outcome.market_left + TOL:
            out.append(Violation(
                "eq6_market",
                f"freely distributed {report.freely_distributed:.3f} exceeds "
                f"auction leftover {outcome.market_left:.3f}",
                t=report.t,
            ))
    return out


def check_free_distribution(ctx: TickContext) -> List[Violation]:
    """Stage-5 shares book-balance and reconstruct each allocation."""
    report = ctx.report
    shares = report.free_shares
    if report.freely_distributed > TOL and not shares:
        # A report built before stage-5 shares were recorded (legacy
        # replay fixtures): the total-level checks in eq6_market still
        # apply, the per-share bookkeeping has nothing to check.
        return []
    out: List[Violation] = []
    total = math.fsum(shares.values())
    if abs(total - report.freely_distributed) > TOL:
        out.append(Violation(
            "free_distribution",
            f"recorded shares sum to {total:.3f} but the tick reports "
            f"{report.freely_distributed:.3f} freely distributed",
            t=report.t,
        ))
    for path, share in shares.items():
        if share <= 0:
            out.append(Violation(
                "free_distribution", f"non-positive share {share:.3f}",
                t=report.t, path=path,
            ))
        if path not in report.allocations:
            out.append(Violation(
                "free_distribution",
                "share granted to a path that was never allocated",
                t=report.t, path=path,
            ))
    purchased = report.auction.purchased if report.auction else {}
    for path, alloc in report.allocations.items():
        if path in ctx.degraded:
            continue
        b = ctx.base.get(path)
        if b is None:
            continue  # no decision kept for this path
        expected = min(
            b + purchased.get(path, 0.0) + shares.get(path, 0.0), ctx.p_us
        )
        if abs(expected - alloc) > TOL:
            out.append(Violation(
                "free_distribution",
                f"allocation {alloc:.3f} != base {b:.3f} + purchased "
                f"{purchased.get(path, 0.0):.3f} + free "
                f"{shares.get(path, 0.0):.3f} (capped at {ctx.p_us:.0f})",
                t=report.t, path=path,
            ))
    return out


def check_budget(ctx: TickContext) -> List[Violation]:
    """Eq. 1 budget: observed non-degraded allocations never over-sell."""
    normal = [
        alloc for path, alloc in ctx.report.allocations.items()
        if path not in ctx.degraded
    ]
    if not normal:
        return []
    allocated = math.fsum(normal)
    committed = math.fsum(
        ctx.guarantees[p] for p in ctx.report.allocations
        if p not in ctx.degraded and p in ctx.guarantees
    )
    # On a host over-committed beyond Eq. 7 the base capping alone may
    # exceed the budget; the ceiling is then the committed guarantees.
    ceiling = max(ctx.total_cycles, committed)
    if allocated > ceiling + TOL:
        return [Violation(
            "budget",
            f"market over-sold: {allocated:.3f} cycles allocated against a "
            f"host capacity of {ctx.total_cycles:.0f} (committed "
            f"guarantees {committed:.3f})",
            t=ctx.report.t,
        )]
    return []


def check_ledger(ctx: TickContext) -> List[Violation]:
    """Wallet safety + exact Eq. 4 accrual / auction spend accounting."""
    report = ctx.report
    cfg = ctx.controller.config
    out: List[Violation] = []
    for vm, balance in report.wallets.items():
        if balance < -TOL:
            out.append(Violation(
                "ledger", f"negative wallet {balance:.3f}",
                t=report.t, vm=vm,
            ))
        if balance > cfg.credit_cap + TOL:
            out.append(Violation(
                "ledger",
                f"wallet {balance:.3f} exceeds credit cap {cfg.credit_cap}",
                t=report.t, vm=vm,
            ))
    if not cfg.control_enabled or (report.allocations and not ctx.estimates):
        return out  # config A never accrues; without decisions, skip delta
    gains: Dict[str, float] = {}
    for s in report.samples:
        g = ctx.guarantees.get(s.cgroup_path)
        if g is None:
            continue
        if s.consumed_cycles < g:
            gains[s.vm_name] = gains.get(s.vm_name, 0.0) + (g - s.consumed_cycles)
        else:
            gains.setdefault(s.vm_name, 0.0)
    spent = report.auction.spent_per_vm if report.auction else {}
    for vm in set(ctx.prev_wallets) | set(gains) | set(report.wallets):
        if vm not in report.wallets:
            continue  # unregistered mid-tick
        expected = min(
            ctx.prev_wallets.get(vm, 0.0) + gains.get(vm, 0.0), cfg.credit_cap
        )
        expected = max(0.0, expected - spent.get(vm, 0.0))
        if abs(report.wallets[vm] - expected) > TOL:
            out.append(Violation(
                "ledger",
                f"wallet {report.wallets[vm]:.3f} != expected {expected:.3f} "
                f"(prev {ctx.prev_wallets.get(vm, 0.0):.3f} + Eq. 4 gain "
                f"{gains.get(vm, 0.0):.3f} - spent {spent.get(vm, 0.0):.3f})",
                t=report.t, vm=vm,
            ))
    return out


def check_enforcement(ctx: TickContext) -> List[Violation]:
    """Every decided allocation matches the quota the backend holds."""
    controller = ctx.controller
    backend = controller.enforcer.backend
    enforcer = controller.enforcer
    failed = getattr(backend, "last_write_errors", {})
    out: List[Violation] = []
    for path, alloc in ctx.report.allocations.items():
        if path in failed:
            continue  # tracked for retry by the resilience layer
        in_force = backend._last_cap.get(path)
        if in_force is None:
            continue  # cgroup vanished mid-tick (teardown race)
        quota, _period = in_force
        expected = enforcer.quota_us(alloc)
        if quota != expected:
            out.append(Violation(
                "enforcement",
                f"cpu.max quota in force is {quota} µs but allocation "
                f"{alloc:.3f} cycles scales to {expected} µs",
                t=ctx.report.t, path=path,
            ))
        current = controller._current_cap.get(path)
        if current is not None and abs(current - alloc) > TOL:
            out.append(Violation(
                "enforcement",
                f"controller cap memory {current:.3f} != allocation "
                f"{alloc:.3f}",
                t=ctx.report.t, path=path,
            ))
    return out


def check_resilience_fallback(ctx: TickContext) -> List[Violation]:
    """Degraded fallback caps stay within the policy's safety bounds."""
    policy = ctx.controller.resilience
    out: List[Violation] = []
    for path, cycles in ctx.report.degraded.items():
        if cycles < -TOL or cycles > ctx.p_us + TOL:
            out.append(Violation(
                "resilience_fallback",
                f"fallback cap {cycles:.3f} outside [0, {ctx.p_us:.0f}]",
                t=ctx.report.t, path=path,
            ))
            continue
        if policy is not None and policy.degraded_action == "guarantee":
            g = ctx.guarantees.get(path)
            if g is not None and abs(cycles - min(g, ctx.p_us)) > TOL:
                out.append(Violation(
                    "resilience_fallback",
                    f"fallback cap {cycles:.3f} != Eq. 2 guarantee "
                    f"{min(g, ctx.p_us):.3f}",
                    t=ctx.report.t, path=path,
                ))
    return out


def check_samples(ctx: TickContext) -> List[Violation]:
    """Monitoring sanity: finite, non-negative observations."""
    out: List[Violation] = []
    for s in ctx.report.samples:
        if not math.isfinite(s.consumed_cycles) or s.consumed_cycles < -TOL:
            out.append(Violation(
                "samples", f"bad consumption {s.consumed_cycles!r}",
                t=ctx.report.t, path=s.cgroup_path,
            ))
        if not math.isfinite(s.vfreq_mhz) or s.vfreq_mhz < -TOL:
            out.append(Violation(
                "samples", f"bad vfreq estimate {s.vfreq_mhz!r}",
                t=ctx.report.t, path=s.cgroup_path,
            ))
    return out


#: The stable catalogue (name -> oracle), in checking order.
INVARIANTS: Dict[str, Callable[[TickContext], List[Violation]]] = {
    "samples": check_samples,
    "eq2_guarantee": check_eq2_guarantee,
    "eq5_base_cap": check_eq5_base_cap,
    "eq6_market": check_eq6_market,
    "free_distribution": check_free_distribution,
    "budget": check_budget,
    "ledger": check_ledger,
    "enforcement": check_enforcement,
    "resilience_fallback": check_resilience_fallback,
}


class InvariantChecker:
    """Runs the full catalogue against each tick of one controller.

    Stateless except for the previous tick's wallet balances (the
    ledger delta oracle) and the cumulative counters the Prometheus
    export renders (``vfreq_invariant_checks_total`` /
    ``vfreq_invariant_violations_total``).
    """

    def __init__(self, controller: "VirtualFrequencyController") -> None:
        self.controller = controller
        self.checks_total = 0
        self.violations_total = 0
        self.violations_by_invariant: Dict[str, int] = {}
        self.last_violations: List[Violation] = []
        self._prev_wallets: Dict[str, float] = dict(controller.ledger.wallets())

    def resync(self) -> None:
        """Re-baseline stateful oracles (call after a snapshot restore)."""
        self._prev_wallets = dict(self.controller.ledger.wallets())

    def check(self, report: "ControllerReport") -> List[Violation]:
        """Run every oracle against one tick; returns the violations."""
        ctx = _make_context(self.controller, report, self._prev_wallets)
        violations: List[Violation] = []
        for fn in INVARIANTS.values():
            violations.extend(fn(ctx))
        self.checks_total += 1
        self.violations_total += len(violations)
        for v in violations:
            self.violations_by_invariant[v.invariant] = (
                self.violations_by_invariant.get(v.invariant, 0) + 1
            )
        self.last_violations = violations
        self._prev_wallets = dict(report.wallets)
        return violations


# ---------------------------------------------------------------------------
# Rebalance plan admissibility (cluster-scale Eq. 7)
# ---------------------------------------------------------------------------

#: Absolute MHz tolerance for the cluster-scale Eq. 7 comparison.
PLAN_TOL_MHZ = 1e-3


def check_plan_admissible(view, plan, *, allocation_ratio: float = 1.0) -> List[Violation]:
    """Independent Eq. 7 oracle for one rebalance plan.

    ``view`` / ``plan`` are duck-typed (:class:`repro.rebalance.view.
    ClusterStateView` / :class:`repro.rebalance.planner.MigrationPlan`)
    so this module stays import-cycle-free; the arithmetic is done
    inline, NOT via the planner's own ``SimulatedState`` — that is the
    point: a planner bug in its what-if bookkeeping must not be able to
    certify its own plan.

    Checks, per plan: every moved VM exists and starts on the recorded
    source; no VM moves twice; no move touches a VM already migrating
    or a node blacked out by an in-flight migration; and after applying
    *all* moves, every receiving node still satisfies
    ``committed_mhz <= capacity_mhz * allocation_ratio`` (Eq. 7, scaled)
    and its memory budget.  Not registered in :data:`INVARIANTS` — the
    signature differs from the per-tick oracles; the
    :class:`~repro.rebalance.loop.RebalanceLoop` calls it directly and
    drops any plan that fails.
    """
    violations: List[Violation] = []

    def bad(message: str, vm: Optional[str] = None) -> None:
        violations.append(Violation(
            invariant="rebalance_plan", message=message, t=plan.t, vm=vm,
        ))

    pinned = set(view.pinned_nodes())
    migrating = set(view.migrating_vms())
    committed_mhz = {n.node_id: n.committed_mhz for n in view.nodes.values()}
    committed_mb = {n.node_id: n.committed_memory_mb for n in view.nodes.values()}
    receiving: set = set()
    moved: set = set()
    for move in plan.moves:
        vm = view.vms.get(move.vm_name)
        if vm is None:
            bad(f"planned VM does not exist in the snapshot", move.vm_name)
            continue
        if move.vm_name in moved:
            bad("VM planned to move twice in one round", move.vm_name)
            continue
        moved.add(move.vm_name)
        if move.vm_name in migrating:
            bad("VM is already migrating (in-flight blackout)", move.vm_name)
            continue
        if vm.node_id != move.source:
            bad(
                f"recorded source {move.source} but snapshot hosts it on "
                f"{vm.node_id}",
                move.vm_name,
            )
            continue
        if move.source in pinned or move.target in pinned:
            bad(
                f"{move.source}->{move.target} touches a node pinned by an "
                "in-flight migration",
                move.vm_name,
            )
            continue
        target = view.nodes.get(move.target)
        if target is None or not target.powered_on:
            bad(f"target {move.target} missing or powered off", move.vm_name)
            continue
        if vm.vfreq_mhz > target.fmax_mhz:
            bad(
                f"guarantee {vm.vfreq_mhz:g} MHz exceeds target F_MAX "
                f"{target.fmax_mhz:g} MHz (Eq. 2)",
                move.vm_name,
            )
            continue
        committed_mhz[move.source] -= vm.demand_mhz
        committed_mb[move.source] -= vm.memory_mb
        committed_mhz[move.target] += vm.demand_mhz
        committed_mb[move.target] += vm.memory_mb
        receiving.add(move.target)
    for node_id in sorted(receiving):
        node = view.nodes[node_id]
        limit = node.capacity_mhz * allocation_ratio
        if committed_mhz[node_id] > limit + PLAN_TOL_MHZ:
            bad(
                f"plan over-commits {node_id}: "
                f"{committed_mhz[node_id]:.3f} MHz committed > "
                f"{limit:.3f} MHz capacity (Eq. 7 x {allocation_ratio:g})"
            )
        if committed_mb[node_id] > node.memory_mb:
            bad(
                f"plan over-commits {node_id} memory: "
                f"{committed_mb[node_id]} MB > {node.memory_mb} MB"
            )
    return violations
