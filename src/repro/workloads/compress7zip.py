"""Model of the Phoronix ``compress-7zip`` benchmark.

7-Zip's built-in benchmark compresses and decompresses with all threads,
interleaving short single-threaded/synchronisation phases between passes
— visible in the paper's Figs. 6-9 as periodic dips of the large
instances' frequency, which the controller resells to the small
instances ("some picks in the frequency for the vCPUs of the small
instances can be observed, when the frequency of the large instances is
reduced", §IV-A2).

The model: demand is 1.0 on every vCPU during compute, dropping to
``dip_level`` for ``dip_duration`` seconds every ``dip_period`` seconds
of benchmark activity.  Work is pooled across vCPUs; each of the
``iterations`` (15 in the paper) is scored as work/wall-time — the
MIPS-like rating 7-Zip reports.
"""

from __future__ import annotations

from repro.workloads.base import PooledWorkWorkload

#: Default per-iteration work: at 2 vCPUs x 2400 MHz an iteration takes
#: ~65 s, matching the paper's "first 3 iterations finish before t=200 s"
#: observation for small instances (Fig. 10).
DEFAULT_WORK_MHZ_S = 312_000.0


class Compress7Zip(PooledWorkWorkload):
    """Phased compression benchmark with synchronisation dips."""

    def __init__(
        self,
        num_vcpus: int,
        *,
        iterations: int = 15,
        work_per_iteration_mhz_s: float = DEFAULT_WORK_MHZ_S,
        start_time: float = 0.0,
        dip_period: float = 25.0,
        dip_duration: float = 3.0,
        dip_level: float = 0.15,
    ) -> None:
        super().__init__(
            num_vcpus,
            iterations=iterations,
            work_per_iteration_mhz_s=work_per_iteration_mhz_s,
            start_time=start_time,
        )
        if dip_period <= 0 or dip_duration < 0 or dip_duration >= dip_period:
            raise ValueError("need 0 <= dip_duration < dip_period")
        if not 0.0 <= dip_level <= 1.0:
            raise ValueError("dip_level must be in [0, 1]")
        self.dip_period = dip_period
        self.dip_duration = dip_duration
        self.dip_level = dip_level

    def in_dip(self, t: float) -> bool:
        """Whether the benchmark is in a synchronisation phase at ``t``."""
        if not self.started(t) or self.finished:
            return False
        phase = (t - self.start_time) % self.dip_period
        return phase >= self.dip_period - self.dip_duration

    def demand(self, vcpu: int, t: float) -> float:
        if not self.started(t) or self.finished:
            return 0.0
        return self.dip_level if self.in_dip(t) else 1.0
