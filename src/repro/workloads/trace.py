"""Demand-trace recording and replay.

Records per-vCPU demand over time from any workload (or live entities)
into a plain array, and replays such arrays as a workload — the
mechanism for trace-driven experiments and regression fixtures.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.workloads.base import Workload


class TraceRecorder:
    """Accumulates (t, demand-per-vcpu) samples."""

    def __init__(self, num_vcpus: int) -> None:
        if num_vcpus <= 0:
            raise ValueError("num_vcpus must be positive")
        self.num_vcpus = num_vcpus
        self._times: List[float] = []
        self._demands: List[List[float]] = []

    def record(self, t: float, demands: Sequence[float]) -> None:
        if len(demands) != self.num_vcpus:
            raise ValueError("demand vector size mismatch")
        if self._times and t <= self._times[-1]:
            raise ValueError("timestamps must be strictly increasing")
        self._times.append(t)
        self._demands.append([float(d) for d in demands])

    def sample(self, workload: Workload, t: float) -> None:
        """Record all vCPU demands of a workload at time ``t``."""
        self.record(t, [workload.demand(j, t) for j in range(self.num_vcpus)])

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._times)

    @property
    def demands(self) -> np.ndarray:
        """Shape (samples, num_vcpus)."""
        if not self._demands:
            return np.zeros((0, self.num_vcpus))
        return np.asarray(self._demands)

    def to_workload(self, start_time: float = 0.0) -> "TraceWorkload":
        return TraceWorkload(
            self.num_vcpus,
            times=self.times,
            demands=self.demands,
            start_time=start_time,
        )


class TraceWorkload(Workload):
    """Replays a recorded demand trace (zero-order hold between samples)."""

    def __init__(
        self,
        num_vcpus: int,
        *,
        times: Sequence[float],
        demands: np.ndarray,
        start_time: float = 0.0,
        loop: bool = False,
    ) -> None:
        super().__init__(num_vcpus, start_time)
        self._times = np.asarray(times, dtype=np.float64)
        self._demands = np.asarray(demands, dtype=np.float64)
        if self._times.ndim != 1 or len(self._times) == 0:
            raise ValueError("times must be a non-empty 1-D sequence")
        if self._demands.shape != (len(self._times), num_vcpus):
            raise ValueError(
                f"demands must have shape ({len(self._times)}, {num_vcpus}), "
                f"got {self._demands.shape}"
            )
        if np.any(np.diff(self._times) <= 0):
            raise ValueError("times must be strictly increasing")
        if np.any(self._demands < 0) or np.any(self._demands > 1):
            raise ValueError("trace demands must be within [0, 1]")
        self.loop = loop

    @property
    def trace_duration(self) -> float:
        return float(self._times[-1] - self._times[0])

    def demand(self, vcpu: int, t: float) -> float:
        if not 0 <= vcpu < self.num_vcpus:
            raise IndexError(f"vcpu index out of range: {vcpu}")
        if not self.started(t):
            return 0.0
        rel = t - self.start_time + self._times[0]
        if self.loop and self.trace_duration > 0:
            rel = self._times[0] + (rel - self._times[0]) % self.trace_duration
        if rel >= self._times[-1]:
            return float(self._demands[-1, vcpu]) if not self.loop else float(self._demands[0, vcpu])
        idx = int(np.searchsorted(self._times, rel, side="right")) - 1
        idx = max(idx, 0)
        return float(self._demands[idx, vcpu])
