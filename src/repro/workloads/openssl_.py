"""Model of the Phoronix ``openssl`` benchmark.

``openssl speed`` saturates every thread with signing operations for a
fixed duration per configuration — a steady, dip-free full-CPU demand.
The score (signs/second) is proportional to achieved cycle throughput.

In the paper's second evaluation (Table V) the medium instances run this
benchmark starting at t = 100 s and *finish* during the experiment,
releasing their cycles to the market ("when the workload on medium
instances completes, there are unallocated cycles that are distributed
among large and small instances", §IV-B2) — so the model has a finite
amount of work.
"""

from __future__ import annotations

from repro.workloads.base import PooledWorkWorkload

#: Default per-iteration work: at 4 vCPUs x 1200 MHz one iteration takes
#: ~50 s, so the paper-shaped run (a handful of iterations) completes
#: mid-experiment as Fig. 13 requires.
DEFAULT_WORK_MHZ_S = 240_000.0


class OpenSSLSpeed(PooledWorkWorkload):
    """Steady crypto benchmark: full demand until the work pool drains."""

    def __init__(
        self,
        num_vcpus: int,
        *,
        iterations: int = 6,
        work_per_iteration_mhz_s: float = DEFAULT_WORK_MHZ_S,
        start_time: float = 0.0,
    ) -> None:
        super().__init__(
            num_vcpus,
            iterations=iterations,
            work_per_iteration_mhz_s=work_per_iteration_mhz_s,
            start_time=start_time,
        )

    def demand(self, vcpu: int, t: float) -> float:
        if not self.started(t) or self.finished:
            return 0.0
        return 1.0
