"""Workload generators standing in for the Phoronix test suite.

The evaluation's two benchmarks are modelled by the work/demand
properties the paper's figures depend on, not by doing real compression:

* :class:`~repro.workloads.compress7zip.Compress7Zip` — full CPU demand
  with periodic synchronisation dips, 15 scored iterations (Figs 6-14);
* :class:`~repro.workloads.openssl_.OpenSSLSpeed` — steady saturating
  demand with a throughput score (Table V medium instances).

Synthetic generators and trace replay support the wider test/bench
surface.
"""

from repro.workloads.base import Workload, WorkloadScore, attach
from repro.workloads.compress7zip import Compress7Zip
from repro.workloads.openssl_ import OpenSSLSpeed
from repro.workloads.synthetic import (
    BurstyWorkload,
    ConstantWorkload,
    IdleWorkload,
    RampWorkload,
    SineWorkload,
    StepWorkload,
)
from repro.workloads.trace import TraceRecorder, TraceWorkload
from repro.workloads.suite import BenchmarkSuite, RunResult, SuiteResult
from repro.workloads.webserver import WebServerWorkload

__all__ = [
    "Workload",
    "WorkloadScore",
    "attach",
    "Compress7Zip",
    "OpenSSLSpeed",
    "ConstantWorkload",
    "StepWorkload",
    "RampWorkload",
    "SineWorkload",
    "BurstyWorkload",
    "IdleWorkload",
    "TraceRecorder",
    "TraceWorkload",
    "BenchmarkSuite",
    "RunResult",
    "SuiteResult",
    "WebServerWorkload",
]
