"""Synthetic demand generators for tests and ablation benches.

These exercise the controller's estimator cases directly: constant
(stable case), step (increase trigger), ramp (trend), sine (oscillation
the damping is meant to absorb) and bursty on/off (the Burst-VM
motivating shape).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.workloads.base import Workload


class ConstantWorkload(Workload):
    """Fixed demand on every vCPU — the estimator's 'stable' case."""

    def __init__(self, num_vcpus: int, level: float = 1.0, start_time: float = 0.0) -> None:
        super().__init__(num_vcpus, start_time)
        if not 0.0 <= level <= 1.0:
            raise ValueError("level must be in [0, 1]")
        self.level = level

    def demand(self, vcpu: int, t: float) -> float:
        return self.level if self.started(t) else 0.0


class IdleWorkload(ConstantWorkload):
    """A VM that never asks for CPU (credit-accrual scenarios)."""

    def __init__(self, num_vcpus: int) -> None:
        super().__init__(num_vcpus, level=0.0)


class StepWorkload(Workload):
    """Demand jumps between levels at fixed times (increase/decrease triggers)."""

    def __init__(
        self,
        num_vcpus: int,
        *,
        times: Sequence[float],
        levels: Sequence[float],
        start_time: float = 0.0,
    ) -> None:
        super().__init__(num_vcpus, start_time)
        if len(times) + 1 != len(levels):
            raise ValueError("need len(levels) == len(times) + 1")
        if list(times) != sorted(times):
            raise ValueError("times must be sorted")
        if any(not 0.0 <= lv <= 1.0 for lv in levels):
            raise ValueError("levels must be in [0, 1]")
        self.times = list(times)
        self.levels = list(levels)

    def demand(self, vcpu: int, t: float) -> float:
        if not self.started(t):
            return 0.0
        rel = t - self.start_time
        idx = int(np.searchsorted(self.times, rel, side="right"))
        return self.levels[idx]


class RampWorkload(Workload):
    """Linear ramp from ``lo`` to ``hi`` over ``duration`` seconds."""

    def __init__(
        self,
        num_vcpus: int,
        *,
        lo: float = 0.0,
        hi: float = 1.0,
        duration: float = 60.0,
        start_time: float = 0.0,
    ) -> None:
        super().__init__(num_vcpus, start_time)
        if not (0.0 <= lo <= 1.0 and 0.0 <= hi <= 1.0):
            raise ValueError("lo/hi must be in [0, 1]")
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.lo = lo
        self.hi = hi
        self.duration = duration

    def demand(self, vcpu: int, t: float) -> float:
        if not self.started(t):
            return 0.0
        frac = min(1.0, (t - self.start_time) / self.duration)
        return self.lo + (self.hi - self.lo) * frac


class SineWorkload(Workload):
    """Sinusoidal demand — stresses the anti-oscillation damping."""

    def __init__(
        self,
        num_vcpus: int,
        *,
        mean: float = 0.5,
        amplitude: float = 0.4,
        period: float = 120.0,
        start_time: float = 0.0,
    ) -> None:
        super().__init__(num_vcpus, start_time)
        if not 0.0 <= mean - amplitude <= mean + amplitude <= 1.0:
            raise ValueError("sine must stay within [0, 1]")
        if period <= 0:
            raise ValueError("period must be positive")
        self.mean = mean
        self.amplitude = amplitude
        self.period = period

    def demand(self, vcpu: int, t: float) -> float:
        if not self.started(t):
            return 0.0
        phase = 2.0 * math.pi * (t - self.start_time) / self.period
        return self.mean + self.amplitude * math.sin(phase)


class BurstyWorkload(Workload):
    """On/off demand with exponential-ish phases (low-traffic website shape).

    Deterministic given the seed; phase lengths are drawn once so demand
    is a pure function of ``t``.
    """

    def __init__(
        self,
        num_vcpus: int,
        *,
        on_level: float = 1.0,
        off_level: float = 0.05,
        mean_on: float = 20.0,
        mean_off: float = 60.0,
        horizon: float = 7200.0,
        start_time: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__(num_vcpus, start_time)
        if not 0.0 <= off_level <= on_level <= 1.0:
            raise ValueError("need 0 <= off_level <= on_level <= 1")
        if mean_on <= 0 or mean_off <= 0 or horizon <= 0:
            raise ValueError("durations must be positive")
        self.on_level = on_level
        self.off_level = off_level
        rng = np.random.default_rng(seed)
        # Precompute alternating off/on phase boundaries across the horizon.
        edges = [0.0]
        on = False  # start off
        while edges[-1] < horizon:
            mean = mean_on if on else mean_off
            edges.append(edges[-1] + float(rng.exponential(mean)))
            on = not on
        self._edges = np.asarray(edges[1:])

    def demand(self, vcpu: int, t: float) -> float:
        if not self.started(t):
            return 0.0
        rel = t - self.start_time
        idx = int(np.searchsorted(self._edges, rel, side="right"))
        on = idx % 2 == 1  # phases alternate off, on, off, ...
        return self.on_level if on else self.off_level


def demand_series(
    workload: Workload,
    times: Sequence[float],
    vcpu: int = 0,
) -> np.ndarray:
    """Sample a workload's demand at the given times (test helper)."""
    return np.asarray([workload.demand(vcpu, float(t)) for t in times])


def make_phased(
    num_vcpus: int,
    pattern: str,
    *,
    start_time: float = 0.0,
    seed: Optional[int] = None,
) -> Workload:
    """Small factory used by ablation benches: name -> workload."""
    if pattern == "constant":
        return ConstantWorkload(num_vcpus, level=1.0, start_time=start_time)
    if pattern == "half":
        return ConstantWorkload(num_vcpus, level=0.5, start_time=start_time)
    if pattern == "sine":
        return SineWorkload(num_vcpus, start_time=start_time)
    if pattern == "bursty":
        return BurstyWorkload(num_vcpus, start_time=start_time, seed=seed or 0)
    if pattern == "idle":
        return IdleWorkload(num_vcpus)
    raise ValueError(f"unknown pattern {pattern!r}")
