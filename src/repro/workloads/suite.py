"""Phoronix-test-suite-like orchestration and reporting.

The paper drives its benchmarks through PTS, which runs each test a
fixed number of times and reports mean/deviation per configuration.
:class:`BenchmarkSuite` does the same over our workload models: it
binds workloads to VMs with staggered start times, runs the simulation
until everything finishes (or a deadline), and produces PTS-style
per-VM and per-class statistics from the recorded iteration scores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.sim.engine import Simulation
from repro.virt.vm import VMInstance
from repro.workloads.base import Workload, attach


@dataclass(frozen=True)
class RunResult:
    """PTS-style statistics for one VM's benchmark run."""

    vm_name: str
    iterations: int
    mean_score: float
    stddev: float
    minimum: float
    maximum: float

    @property
    def relative_deviation_pct(self) -> float:
        """PTS's headline noise metric: stddev as % of the mean."""
        if self.mean_score == 0:
            return 0.0
        return 100.0 * self.stddev / self.mean_score


@dataclass
class SuiteResult:
    """All per-VM results plus class-level aggregation."""

    results: List[RunResult] = field(default_factory=list)
    wall_seconds: float = 0.0

    def by_vm(self, vm_name: str) -> RunResult:
        for r in self.results:
            if r.vm_name == vm_name:
                return r
        raise KeyError(f"no result for VM {vm_name}")

    def class_mean(self, prefix: str) -> float:
        scores = [r.mean_score for r in self.results if r.vm_name.startswith(prefix)]
        if not scores:
            raise KeyError(f"no results with prefix {prefix!r}")
        return float(np.mean(scores))

    def class_relative_deviation_pct(self, prefix: str) -> float:
        devs = [
            r.relative_deviation_pct
            for r in self.results
            if r.vm_name.startswith(prefix)
        ]
        if not devs:
            raise KeyError(f"no results with prefix {prefix!r}")
        return float(np.mean(devs))


class BenchmarkSuite:
    """Attach workloads to VMs, run, and summarise like PTS."""

    def __init__(self, simulation: Simulation) -> None:
        self.simulation = simulation
        self._vms: List[VMInstance] = []

    def add(self, vm: VMInstance, workload: Workload) -> None:
        """Schedule one VM's benchmark (start time lives on the workload)."""
        attach(vm, workload)
        self._vms.append(vm)

    def run(self, deadline_s: float, *, settle_s: float = 0.0) -> SuiteResult:
        """Run until every scheduled benchmark finishes or the deadline.

        ``settle_s`` keeps the simulation going after completion (e.g. to
        observe the controller redistributing the freed cycles).
        """
        if deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        sim = self.simulation
        t0 = sim.t
        sim.run(deadline_s, until=self._all_done)
        if settle_s > 0:
            sim.run(settle_s)
        return self._collect(sim.t - t0)

    def _all_done(self) -> bool:
        return all(vm.workload is None or vm.workload.finished for vm in self._vms)

    def _collect(self, wall: float) -> SuiteResult:
        out = SuiteResult(wall_seconds=wall)
        for vm in self._vms:
            scores = np.asarray([s.score for s in vm.workload.scores])
            if scores.size == 0:
                out.results.append(
                    RunResult(vm.name, 0, 0.0, 0.0, 0.0, 0.0)
                )
                continue
            out.results.append(
                RunResult(
                    vm_name=vm.name,
                    iterations=int(scores.size),
                    mean_score=float(scores.mean()),
                    stddev=float(scores.std()),
                    minimum=float(scores.min()),
                    maximum=float(scores.max()),
                )
            )
        return out
