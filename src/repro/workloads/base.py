"""Workload protocol.

A workload drives the vCPUs of one VM.  Each simulation tick the engine:

1. asks :meth:`Workload.demand` for every vCPU — the fraction of one core
   the guest wants during the coming tick;
2. after scheduling, calls :meth:`Workload.advance` with what each vCPU
   actually received (CPU-seconds) and the effective core frequency, so
   the workload can accumulate *work* (MHz x seconds — the natural unit
   when a benchmark's speed is proportional to the clock it runs at).

Work-conserving scoring is what makes the Fig. 10/11/14 reproduction
meaningful: an iteration's score is work/wall-time, so capped VMs show
lower, *flatter* scores — the paper's predictability argument.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class WorkloadScore:
    """One scored benchmark iteration."""

    iteration: int
    started_at: float
    finished_at: float
    work_mhz_s: float

    @property
    def duration_s(self) -> float:
        return self.finished_at - self.started_at

    @property
    def score(self) -> float:
        """Throughput in MHz-equivalents (work per wall second)."""
        if self.duration_s <= 0:
            raise ValueError("iteration has non-positive duration")
        return self.work_mhz_s / self.duration_s


class Workload(abc.ABC):
    """Base class for per-VM workload models."""

    def __init__(self, num_vcpus: int, start_time: float = 0.0) -> None:
        if num_vcpus <= 0:
            raise ValueError("num_vcpus must be positive")
        if start_time < 0:
            raise ValueError("start_time must be >= 0")
        self.num_vcpus = num_vcpus
        self.start_time = start_time
        self.scores: List[WorkloadScore] = []

    @abc.abstractmethod
    def demand(self, vcpu: int, t: float) -> float:
        """Desired fraction of one core for ``vcpu`` during the tick at ``t``."""

    def advance(self, vcpu: int, t: float, dt: float, cpu_seconds: float, freq_mhz: float) -> None:
        """Account progress; default implementation tracks nothing."""

    @property
    def finished(self) -> bool:
        """Whether the workload has no more work to run."""
        return False

    def started(self, t: float) -> bool:
        return t >= self.start_time


def attach(vm, workload: Workload) -> Workload:
    """Bind a workload to a VM instance (validates vCPU count)."""
    if workload.num_vcpus != vm.num_vcpus:
        raise ValueError(
            f"workload sized for {workload.num_vcpus} vCPUs but VM "
            f"{vm.name} has {vm.num_vcpus}"
        )
    vm.workload = workload
    return workload


class PooledWorkWorkload(Workload):
    """Shared-work base: vCPUs jointly consume per-iteration work quanta.

    Models a multi-threaded benchmark (both Phoronix workloads are): all
    vCPUs pull from the same work pool, an iteration completes when the
    pooled accumulated work reaches the iteration size, and its score is
    recorded.  Subclasses define only the demand shape.
    """

    def __init__(
        self,
        num_vcpus: int,
        *,
        iterations: int,
        work_per_iteration_mhz_s: float,
        start_time: float = 0.0,
    ) -> None:
        super().__init__(num_vcpus, start_time)
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        if work_per_iteration_mhz_s <= 0:
            raise ValueError("work_per_iteration_mhz_s must be positive")
        self.iterations = iterations
        self.work_per_iteration = work_per_iteration_mhz_s
        self._done_iterations = 0
        self._iter_work = 0.0
        self._iter_started_at: Optional[float] = None

    @property
    def finished(self) -> bool:
        return self._done_iterations >= self.iterations

    @property
    def current_iteration(self) -> int:
        """0-based index of the in-flight iteration."""
        return self._done_iterations

    def iteration_progress(self) -> float:
        """Fraction of the current iteration's work already done."""
        if self.finished:
            return 1.0
        return self._iter_work / self.work_per_iteration

    def advance(self, vcpu: int, t: float, dt: float, cpu_seconds: float, freq_mhz: float) -> None:
        if self.finished or not self.started(t):
            return
        if cpu_seconds < 0 or freq_mhz < 0:
            raise ValueError("negative progress inputs")
        if self._iter_started_at is None:
            self._iter_started_at = t
        self._iter_work += cpu_seconds * freq_mhz
        while self._iter_work >= self.work_per_iteration and not self.finished:
            self.scores.append(
                WorkloadScore(
                    iteration=self._done_iterations,
                    started_at=self._iter_started_at,
                    finished_at=t + dt,
                    work_mhz_s=self.work_per_iteration,
                )
            )
            self._iter_work -= self.work_per_iteration
            self._done_iterations += 1
            self._iter_started_at = t + dt
