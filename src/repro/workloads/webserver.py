"""Latency-oriented web-server workload.

The paper's motivating low tier is the "personal website" (§I/§II) —
a VM whose owner cares about *response time*, not throughput.  This
workload turns the simulator into a queueing system so the effect of
CPU capping on tail latency becomes measurable:

* requests arrive on a precomputed Poisson schedule (deterministic per
  seed);
* each request costs a fixed amount of work (MHz x seconds);
* the VM's vCPUs drain the queue at whatever speed the host grants
  them; a request's *response time* is completion minus arrival.

The demand signal is binary-ish: full while the queue is non-empty,
a small keep-alive level otherwise — the bursty shape burst VMs target
(§II) and trigger-based controllers find hardest.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

import numpy as np

from repro.workloads.base import Workload


class WebServerWorkload(Workload):
    """Poisson request stream served by the VM's vCPUs."""

    def __init__(
        self,
        num_vcpus: int,
        *,
        rps: float,
        work_per_request_mhz_s: float = 200.0,
        horizon_s: float = 3600.0,
        idle_level: float = 0.02,
        start_time: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__(num_vcpus, start_time)
        if rps <= 0:
            raise ValueError("rps must be positive")
        if work_per_request_mhz_s <= 0:
            raise ValueError("work_per_request_mhz_s must be positive")
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        if not 0.0 <= idle_level <= 1.0:
            raise ValueError("idle_level must be in [0, 1]")
        self.rps = rps
        self.work_per_request = work_per_request_mhz_s
        self.idle_level = idle_level
        rng = np.random.default_rng(seed)
        n_expected = int(rps * horizon_s * 1.5) + 16
        gaps = rng.exponential(1.0 / rps, size=n_expected)
        arrivals = np.cumsum(gaps)
        self._arrivals = arrivals[arrivals < horizon_s]
        self._next_arrival_idx = 0
        # queue of [arrival_time, remaining_work]
        self._queue: Deque[List[float]] = deque()
        self.response_times: List[float] = []
        self.dropped = 0

    # -- queue mechanics ---------------------------------------------------------

    def _admit_arrivals(self, t: float) -> None:
        rel = t - self.start_time
        while (
            self._next_arrival_idx < len(self._arrivals)
            and self._arrivals[self._next_arrival_idx] <= rel
        ):
            arrival = self._arrivals[self._next_arrival_idx] + self.start_time
            self._queue.append([arrival, self.work_per_request])
            self._next_arrival_idx += 1

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def served(self) -> int:
        return len(self.response_times)

    def demand(self, vcpu: int, t: float) -> float:
        if not self.started(t):
            return 0.0
        self._admit_arrivals(t)
        return 1.0 if self._queue else self.idle_level

    def advance(self, vcpu: int, t: float, dt: float, cpu_seconds: float, freq_mhz: float) -> None:
        if not self.started(t):
            return
        if cpu_seconds < 0 or freq_mhz < 0:
            raise ValueError("negative progress inputs")
        self._admit_arrivals(t + dt)
        budget = cpu_seconds * freq_mhz  # MHz*s of work this vCPU did
        while budget > 1e-12 and self._queue:
            head = self._queue[0]
            take = min(budget, head[1])
            head[1] -= take
            budget -= take
            if head[1] <= 1e-9:
                self._queue.popleft()
                self.response_times.append(max(0.0, t + dt - head[0]))

    # -- metrics --------------------------------------------------------------------

    def percentile_ms(self, q: float) -> float:
        """Response-time percentile in milliseconds (q in [0, 100])."""
        if not self.response_times:
            raise ValueError("no completed requests yet")
        return float(np.percentile(self.response_times, q)) * 1000.0

    def mean_ms(self) -> float:
        if not self.response_times:
            raise ValueError("no completed requests yet")
        return float(np.mean(self.response_times)) * 1000.0
