"""Inline invariant-oracle overhead — the price of ``--invariants``.

The paper-equation oracles (:mod:`repro.checking.invariants`) re-walk
every sample in plain Python after each tick, so they are off by
default.  This bench quantifies the toggle on a loaded host: the same
closed loop runs with and without ``check_invariants=True`` and the
artefact table reports mean tick cost for both, plus the oracle's own
bookkeeping (every tick checked, zero violations — a non-zero count
here would mean the controller itself is broken).

Asserted claims:

* the checked run trips no invariant (the oracles hold on the real
  paper workload shape, not just the fuzzer's);
* every tick was checked (the toggle actually wires the oracle in);
* the overhead factor stays within a generous envelope (< 25x the
  uninstrumented tick) — a regression here means someone put
  quadratic work in the oracle path.

``BENCH_SMOKE=1`` shrinks the run for CI.
"""

import os
import time

from repro.core.config import ControllerConfig
from repro.core.controller import VirtualFrequencyController
from repro.hw.node import Node
from repro.hw.nodespecs import NodeSpec
from repro.sim.report import render_table
from repro.virt.hypervisor import Hypervisor
from repro.virt.template import VMTemplate

from conftest import emit

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
TICKS = 30 if SMOKE else 120
VMS = 8 if SMOKE else 24

SPEC = NodeSpec(
    name="bench-inv",
    cpu_model="bench host",
    sockets=1,
    cores_per_socket=8,
    threads_per_core=2,
    fmax_mhz=2400.0,
    fmin_mhz=1200.0,
    memory_mb=64 * 1024,
    freq_jitter_mhz=0.0,
)


def _run(check_invariants: bool):
    node = Node(SPEC, seed=3)
    hv = Hypervisor(node, enforce_admission=False)
    config = ControllerConfig.paper_evaluation(
        check_invariants=check_invariants
    )
    ctrl = VirtualFrequencyController(
        node.fs,
        node.procfs,
        node.sysfs,
        num_cpus=SPEC.logical_cpus,
        fmax_mhz=SPEC.fmax_mhz,
        config=config,
    )
    per_vm = SPEC.capacity_mhz / (VMS + 1)
    for k in range(VMS):
        vm = hv.provision(
            VMTemplate("t", vcpus=1, vfreq_mhz=min(1000.0, per_vm)), f"vm-{k}"
        )
        ctrl.register_vm(vm.name, vm.template.vfreq_mhz)
        vm.set_uniform_demand(0.8)
    elapsed = 0.0
    for t in range(TICKS):
        node.step(1.0)
        t0 = time.perf_counter()
        ctrl.tick(float(t))
        elapsed += time.perf_counter() - t0
    return ctrl, elapsed / TICKS


def test_invariant_overhead(once):
    def run_both():
        base_ctrl, base_s = _run(check_invariants=False)
        checked_ctrl, checked_s = _run(check_invariants=True)
        return base_ctrl, base_s, checked_ctrl, checked_s

    base_ctrl, base_s, checked_ctrl, checked_s = once(run_both)

    checker = checked_ctrl.invariant_checker
    assert checker is not None
    assert base_ctrl.invariant_checker is None
    assert checker.checks_total == TICKS
    assert checker.violations_total == 0

    factor = checked_s / base_s if base_s > 0 else float("inf")
    assert factor < 25.0, f"oracle overhead factor {factor:.1f}x"

    emit(render_table(
        ["mode", "mean tick ms", "overhead"],
        [
            ["control off (default)", f"{base_s * 1e3:.3f}", "1.00x"],
            ["--invariants inline", f"{checked_s * 1e3:.3f}", f"{factor:.2f}x"],
        ],
        title=f"inline oracle cost, {VMS} VMs x {TICKS} ticks "
              f"({checker.checks_total} ticks checked, "
              f"{checker.violations_total} violations)",
    ))
