"""Extension — the §IV-C energy projection, actually simulated.

The paper argues the 7 freed nodes "can be reused for additional
workload, or shutdown in order to reduce the energy consumption" but
never measures it.  This bench runs the full 22-node cluster with the
whole 400-VM workload for 5 simulated minutes under both placements:

* vCPU-count BestFit: 22 nodes on, load spread thin;
* Eq. 7 BestFit: <= 15 nodes on, empty nodes powered off.

Every VM runs a steady 60 % load, so the total work demanded is the
same in both configurations; the energy delta is the consolidation win
minus the higher dynamic draw of the hotter nodes.
"""

from repro.hw.cluster import Cluster
from repro.placement.bestfit import BestFit
from repro.placement.constraints import CoreSplittingConstraint, VcpuCountConstraint
from repro.sim.cluster_engine import ClusterSimulation
from repro.sim.report import render_table
from repro.workloads.synthetic import ConstantWorkload

from conftest import emit

RUN_S = 300.0
LOAD = 0.6


def _workload_for(request):
    return ConstantWorkload(request.template.vcpus, level=LOAD)


def _run(constraint, *, controlled):
    from repro.placement.request import paper_workload

    cluster = Cluster.paper_cluster()
    placement = BestFit(constraint).place(cluster, paper_workload())
    sim = ClusterSimulation(
        cluster, controlled=controlled, dt=0.5, enforce_admission=False
    )
    sim.deploy(placement, _workload_for)
    powered_off = sim.power_off_empty_nodes()
    sim.run(RUN_S)
    return sim, powered_off


def test_cluster_energy(once):
    classic, eq7 = once(
        lambda: (
            _run(VcpuCountConstraint(), controlled=False),
            _run(CoreSplittingConstraint(), controlled=True),
        )
    )
    (sim_classic, off_classic), (sim_eq7, off_eq7) = classic, eq7

    rows = [
        [
            "vCPU count, no capping",
            sim_classic.nodes_powered_on(),
            off_classic,
            f"{sim_classic.total_energy_wh():,.1f}",
        ],
        [
            "Eq. 7 + controller + shutdown",
            sim_eq7.nodes_powered_on(),
            off_eq7,
            f"{sim_eq7.total_energy_wh():,.1f}",
        ],
    ]
    emit(
        render_table(
            ["configuration", "nodes on", "nodes off", "energy (Wh, 5 min)"],
            rows,
            title="§IV-C energy projection, 400 VMs on 22 nodes",
        )
    )

    assert off_eq7 >= 7  # the paper's "7 other nodes"
    assert off_classic == 0
    # consolidation + shutdown wins on energy for the same demanded work
    assert sim_eq7.total_energy_wh() < sim_classic.total_energy_wh()
