"""Extension — operator study: admission policy vs SLA under churn.

The paper's §I premise, staged: a Poisson stream of VM requests (the
paper's small/medium/large mix) hits a 2-chetemi + 1-chiclet cluster for
a simulated half hour.  Three operating points:

* **Eq. 7 + controller** (the paper): admit only what can be
  guaranteed; the controller enforces it;
* **vCPU-count + no capping**: the classic rule at 1:1 — admits fewer
  VMs than Eq. 7 can (it counts vCPUs, not MHz), and uncontrolled
  sharing still lets colliding VMs dip below their implied speed;
* **vCPU-count x2 + no capping**: the overcommit everyone actually
  runs — highest acceptance, SLA carnage.

Ground-truth SLA: a VM-period is violated when a vCPU demanding at
least its guaranteed share received less than 98 % of it.  SLA is
reported separately for steady (batch) and bursty (web) VMs: the
controller's multiplicative ramp (§III-B2) makes a VM waking from idle
climb back to its guarantee over several iterations, a real cost of the
paper's trigger design that only bursty workloads pay.
"""

from repro.hw.cluster import Cluster
from repro.hw.nodespecs import CHETEMI, CHICLET
from repro.placement.constraints import CoreSplittingConstraint, VcpuCountConstraint
from repro.sim.arrivals import CloudOperator, generate_arrivals
from repro.sim.cluster_engine import ClusterSimulation
from repro.sim.report import render_table
from repro.virt.template import LARGE, MEDIUM, SMALL
from repro.workloads.synthetic import BurstyWorkload, ConstantWorkload

from conftest import emit

HORIZON_S = 1800.0
RATE = 0.06  # one VM every ~17 s; with 900 s lifetimes the steady-state
# offered load (~54 VMs, ~163 kMHz) well exceeds one chetemi's 96 kMHz.


def _cluster():
    return Cluster.from_counts({CHETEMI: 1})


def _events():
    return generate_arrivals(
        rate_per_s=RATE,
        template_mix=[(SMALL, 5.0), (MEDIUM, 1.0), (LARGE, 2.0)],
        mean_lifetime_s=900.0,
        horizon_s=HORIZON_S,
        seed=42,
    )


def _workload_for(event):
    # mixed population: half saturating batch, half bursty web
    if int(event.name.split("-")[-1]) % 2 == 0:
        return ConstantWorkload(event.template.vcpus, level=1.0)
    return BurstyWorkload(
        event.template.vcpus, seed=hash(event.name) % 2**32, start_time=event.t
    )


def _run(constraint, *, controlled, enforce_admission, controller_config=None):
    sim = ClusterSimulation(
        _cluster(),
        controlled=controlled,
        dt=0.5,
        enforce_admission=enforce_admission,
        controller_config=controller_config,
    )
    operator = CloudOperator(sim, constraint, _workload_for)
    return operator.run(_events(), horizon_s=HORIZON_S)


def _sweep():
    from dataclasses import replace

    from repro.core.config import ControllerConfig

    reserved_cfg = replace(
        ControllerConfig.paper_evaluation(), reserve_guarantee=True
    )
    return {
        "Eq.7 + controller": _run(
            CoreSplittingConstraint(), controlled=True, enforce_admission=True
        ),
        "Eq.7 + controller (reserved)": _run(
            CoreSplittingConstraint(),
            controlled=True,
            enforce_admission=True,
            controller_config=reserved_cfg,
        ),
        "vCPU count, no capping": _run(
            VcpuCountConstraint(), controlled=False, enforce_admission=False
        ),
        "vCPU count x2, no capping": _run(
            VcpuCountConstraint(consolidation_factor=2.0),
            controlled=False,
            enforce_admission=False,
        ),
    }


def _class_rate(outcome, *, steady: bool) -> float:
    """Violation rate restricted to steady (even index) or bursty VMs."""
    checks = violations = 0
    for name, c in outcome.checks_by_vm.items():
        is_steady = int(name.split("-")[-1]) % 2 == 0
        if is_steady != steady:
            continue
        checks += c
        violations += outcome.violations_by_vm.get(name, 0)
    return violations / checks if checks else 0.0


def test_operator_study(once):
    outcomes = once(_sweep)

    rows = []
    for label, outcome in outcomes.items():
        rows.append(
            [
                label,
                f"{outcome.accepted}/{outcome.accepted + outcome.rejected}",
                f"{outcome.acceptance_rate:.2f}",
                f"{_class_rate(outcome, steady=True) * 100:.1f} %",
                f"{_class_rate(outcome, steady=False) * 100:.1f} %",
                len(outcome.vms_violated),
            ]
        )
    emit(
        render_table(
            ["admission policy", "accepted", "rate", "SLA viol (steady)",
             "SLA viol (bursty)", "VMs hit"],
            rows,
            title=f"Operator study: {HORIZON_S:.0f} s of Poisson arrivals, 1 chetemi",
        )
    )

    eq7 = outcomes["Eq.7 + controller"]
    reserved = outcomes["Eq.7 + controller (reserved)"]
    classic = outcomes["vCPU count, no capping"]
    over = outcomes["vCPU count x2, no capping"]

    # the paper's pitch, quantified:
    # 1. guarantees hold for steady VMs under Eq.7 + controller ...
    assert _class_rate(eq7, steady=True) <= 0.01
    # 2. ... the residual bursty-VM rate is the §III-B2 ramp cost, an
    # honest finding about the trigger design (documented, bounded):
    assert _class_rate(eq7, steady=False) <= 0.25
    # 2b. reserving guarantees (our extension) removes the ramp cost
    assert _class_rate(reserved, steady=False) <= 0.01
    assert _class_rate(reserved, steady=True) <= 0.01
    # 3. overcommit buys acceptance with steady-VM SLA violations
    assert over.accepted >= classic.accepted
    assert _class_rate(over, steady=True) > _class_rate(eq7, steady=True)
    # 4. Eq.7 admits at least as many VMs as strict vCPU counting — MHz
    # is the finer-grained currency (a core can host several slow vCPUs)
    assert eq7.accepted >= classic.accepted
    # 5. and the cluster was genuinely contended for the comparison
    assert eq7.rejected > 0