"""Scaling micro-benches: scheduler tick and controller iteration cost
as the vCPU population grows.

The paper's controller must stay a negligible fraction of its 1 s
period on dense hosts ("it must consume as little as possible CPU
time", §III-B2).  These benches pin the per-iteration cost at three
population sizes and assert sane growth (roughly linear in vCPUs —
the fair-share core is O(n log n)).
"""

import pytest

from repro.cgroups.fs import CgroupFS, CgroupVersion
from repro.sched.cfs import CfsScheduler
from repro.sched.entity import SchedEntity
from repro.sim.report import render_table

from conftest import emit


def build(num_vms, vcpus_per_vm, num_cpus):
    fs = CgroupFS(CgroupVersion.V2)
    fs.makedirs("/machine.slice")
    entities = []
    for i in range(num_vms):
        for j in range(vcpus_per_vm):
            path = f"/machine.slice/vm{i}/vcpu{j}"
            fs.makedirs(path)
            entities.append(
                SchedEntity(tid=1000 + 100 * i + j, cgroup_path=path, demand=1.0)
            )
    return CfsScheduler(fs, num_cpus), entities


@pytest.mark.parametrize("num_vms", [10, 40, 160])
def test_scheduler_tick_scaling(benchmark, num_vms):
    scheduler, entities = build(num_vms, 2, num_cpus=64)
    result = benchmark(scheduler.schedule, entities, 0.5)
    assert len(result) >= num_vms  # one allocation record per cgroup


def _controller_host(num_vms):
    from repro.core.controller import VirtualFrequencyController
    from repro.hw.node import Node
    from repro.hw.nodespecs import NodeSpec
    from repro.virt.hypervisor import Hypervisor
    from repro.virt.template import VMTemplate

    spec = NodeSpec(
        name="dense",
        cpu_model="bench",
        sockets=2,
        cores_per_socket=32,
        threads_per_core=2,
        fmax_mhz=2400.0,
        fmin_mhz=1200.0,
        memory_mb=512 * 1024,
        freq_jitter_mhz=0.0,
    )
    node = Node(spec, seed=1)
    hv = Hypervisor(node, enforce_admission=False)
    ctrl = VirtualFrequencyController(
        node.fs, node.procfs, node.sysfs,
        num_cpus=spec.logical_cpus, fmax_mhz=spec.fmax_mhz,
    )
    ctrl.keep_reports = False
    template = VMTemplate("d", vcpus=2, vfreq_mhz=500.0)
    for k in range(num_vms):
        vm = hv.provision(template, f"d-{k}")
        ctrl.register_vm(vm.name, 500.0)
        vm.set_uniform_demand(1.0)
    node.step(1.0)
    ctrl.tick(1.0)  # warm histories
    return node, ctrl


@pytest.mark.parametrize("num_vms", [16, 64, 128])
def test_controller_iteration_scaling(benchmark, num_vms):
    node, ctrl = _controller_host(num_vms)
    clock = {"t": 1.0}

    def one():
        node.step(1.0)
        clock["t"] += 1.0
        return ctrl.tick(clock["t"])

    report = benchmark(one)
    emit(
        render_table(
            ["vCPUs", "iteration cost"],
            [[num_vms * 2, f"{report.timings.total * 1e3:.2f} ms"]],
            title=f"controller iteration at {num_vms} VMs",
        )
    )
    # even the densest host stays a small fraction of the 1 s period
    assert report.timings.total < 0.25
