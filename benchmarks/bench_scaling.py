"""Scaling micro-benches: scheduler tick and controller iteration cost
as the vCPU population grows.

The paper's controller must stay a negligible fraction of its 1 s
period on dense hosts ("it must consume as little as possible CPU
time", §III-B2).  These benches pin the per-iteration cost at three
population sizes and assert sane growth (roughly linear in vCPUs —
the fair-share core is O(n log n)).
"""

import json
import os
import pathlib

import pytest

from repro.cgroups.fs import CgroupFS, CgroupVersion
from repro.sched.cfs import CfsScheduler
from repro.sched.entity import SchedEntity
from repro.sim.report import render_table

from conftest import emit, results_path


def build(num_vms, vcpus_per_vm, num_cpus):
    fs = CgroupFS(CgroupVersion.V2)
    fs.makedirs("/machine.slice")
    entities = []
    for i in range(num_vms):
        for j in range(vcpus_per_vm):
            path = f"/machine.slice/vm{i}/vcpu{j}"
            fs.makedirs(path)
            entities.append(
                SchedEntity(tid=1000 + 100 * i + j, cgroup_path=path, demand=1.0)
            )
    return CfsScheduler(fs, num_cpus), entities


@pytest.mark.parametrize("num_vms", [10, 40, 160])
def test_scheduler_tick_scaling(benchmark, num_vms):
    scheduler, entities = build(num_vms, 2, num_cpus=64)
    result = benchmark(scheduler.schedule, entities, 0.5)
    assert len(result) >= num_vms  # one allocation record per cgroup


def _controller_host(num_vms, engine="vectorized"):
    from repro.core.config import ControllerConfig
    from repro.core.controller import VirtualFrequencyController
    from repro.hw.node import Node
    from repro.hw.nodespecs import NodeSpec
    from repro.virt.hypervisor import Hypervisor
    from repro.virt.template import VMTemplate

    spec = NodeSpec(
        name="dense",
        cpu_model="bench",
        sockets=2,
        cores_per_socket=32,
        threads_per_core=2,
        fmax_mhz=2400.0,
        fmin_mhz=1200.0,
        memory_mb=512 * 1024,
        freq_jitter_mhz=0.0,
    )
    node = Node(spec, seed=1)
    hv = Hypervisor(node, enforce_admission=False)
    ctrl = VirtualFrequencyController(
        node.fs, node.procfs, node.sysfs,
        num_cpus=spec.logical_cpus, fmax_mhz=spec.fmax_mhz,
        config=ControllerConfig.paper_evaluation(engine=engine),
    )
    ctrl.keep_reports = False
    template = VMTemplate("d", vcpus=2, vfreq_mhz=500.0)
    for k in range(num_vms):
        vm = hv.provision(template, f"d-{k}")
        ctrl.register_vm(vm.name, 500.0)
        vm.set_uniform_demand(1.0)
    node.step(1.0)
    ctrl.tick(1.0)  # warm histories
    return node, ctrl


@pytest.mark.parametrize("num_vms", [16, 64, 128])
def test_controller_iteration_scaling(benchmark, num_vms):
    node, ctrl = _controller_host(num_vms)
    clock = {"t": 1.0}

    def one():
        node.step(1.0)
        clock["t"] += 1.0
        return ctrl.tick(clock["t"])

    report = benchmark(one)
    emit(
        render_table(
            ["vCPUs", "iteration cost"],
            [[num_vms * 2, f"{report.timings.total * 1e3:.2f} ms"]],
            title=f"controller iteration at {num_vms} VMs",
        )
    )
    # even the densest host stays a small fraction of the 1 s period
    assert report.timings.total < 0.25


# -- scalar vs vectorised engine comparison (docs/performance.md) ----------------

#: Reduced sizes under BENCH_SMOKE=1 (the bench-perf-smoke CI gate);
#: the full run is the committed BENCH_controller.json baseline.
PERF_SMOKE = bool(os.environ.get("BENCH_SMOKE"))
PERF_VMS = 24 if PERF_SMOKE else 160
PERF_TICKS = 8 if PERF_SMOKE else 25
#: Required vectorised speedup of the stage 2-5 aggregate at full size
#: (the ISSUE's >=5x target at 160 VMs); smoke sizes are too small for
#: vectorisation to shine, there the regression check is the gate.
PERF_MIN_SPEEDUP = 1.0 if PERF_SMOKE else 5.0


def _stage25(timings):
    """Aggregate of the vectorised stages (2 estimate .. 5 distribute).

    Stage 1 (monitoring) and 6 (enforcement) are kernel-surface bound
    and identical between engines; the SoA fast path targets 2-5.
    """
    return timings.estimate + timings.credits + timings.auction + timings.distribute


def _measure_engine(engine):
    """Per-tick stage costs of one engine over PERF_TICKS closed loops.

    Measured at steady state: the host is warmed until every history
    window is full (history_len ticks), so the numbers are the recurring
    per-tick cost the paper's 1 s loop pays forever, not the one-off
    warmup transient.
    """
    node, ctrl = _controller_host(PERF_VMS, engine=engine)
    t = 1.0
    for _ in range(ctrl.config.history_len + 1):
        node.step(1.0)
        t += 1.0
        ctrl.tick(t)
    reports = []
    for _ in range(PERF_TICKS):
        node.step(1.0)
        t += 1.0
        reports.append(ctrl.tick(t))
    n = len(reports)
    return {
        "stage2_5_seconds_per_tick": sum(_stage25(r.timings) for r in reports) / n,
        "total_seconds_per_tick": sum(r.timings.total for r in reports) / n,
    }, reports


def test_engine_speedup_and_baseline(benchmark):
    """Vectorised vs scalar stage 2-5 cost; records BENCH_controller.json.

    Also cross-checks the two report streams for exact equality — the
    speedup must not come from computing something else.
    """

    def compare():
        scalar, scalar_reports = _measure_engine("scalar")
        vector, vector_reports = _measure_engine("vectorized")
        return scalar, vector, scalar_reports, vector_reports

    scalar, vector, scalar_reports, vector_reports = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )

    for i, (a, b) in enumerate(zip(scalar_reports, vector_reports)):
        assert a.allocations == b.allocations, f"tick {i}: allocations differ"
        assert a.wallets == b.wallets, f"tick {i}: wallets differ"
        assert a.market_initial == b.market_initial, f"tick {i}"
        assert a.freely_distributed == b.freely_distributed, f"tick {i}"

    speedup = (
        scalar["stage2_5_seconds_per_tick"] / vector["stage2_5_seconds_per_tick"]
        if vector["stage2_5_seconds_per_tick"] > 0
        else float("inf")
    )
    section = {
        "num_vms": PERF_VMS,
        "ticks": PERF_TICKS,
        "scalar": scalar,
        "vectorized": vector,
        "speedup_stage2_5": speedup,
    }
    out_path = results_path("BENCH_controller.json")
    existing = {}
    if out_path.exists():
        existing = json.loads(out_path.read_text())
    existing["smoke" if PERF_SMOKE else "full"] = section
    out_path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")

    emit(
        render_table(
            ["engine", "stage 2-5 / tick", "total / tick"],
            [
                ["scalar", f"{scalar['stage2_5_seconds_per_tick'] * 1e3:.3f} ms",
                 f"{scalar['total_seconds_per_tick'] * 1e3:.3f} ms"],
                ["vectorized", f"{vector['stage2_5_seconds_per_tick'] * 1e3:.3f} ms",
                 f"{vector['total_seconds_per_tick'] * 1e3:.3f} ms"],
                ["speedup", f"{speedup:.2f}x", ""],
            ],
            title=f"engine comparison at {PERF_VMS} VMs ({PERF_VMS * 2} vCPUs)",
        )
    )
    assert speedup >= PERF_MIN_SPEEDUP, (
        f"stage 2-5 speedup {speedup:.2f}x below the "
        f"{PERF_MIN_SPEEDUP}x target at {PERF_VMS} VMs"
    )
