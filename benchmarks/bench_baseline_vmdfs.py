"""Baseline — VMDFS-style predictive shares vs the paper's controller.

§II: "their proposed approach does not deliver differentiated
frequencies to the hosted VMs, assuming they share the same priority".
Staged on a contended chetemi hosting the paper's small/large mix: the
predictive share controller converges every saturated vCPU to the same
speed, while the virtual frequency controller splits them 500 / 1800 as
purchased.
"""

from repro.hw.nodespecs import CHETEMI
from repro.sim.engine import Simulation
from repro.sim.report import render_table
from repro.virt.template import LARGE, SMALL
from repro.virt.vmdfs import VmdfsController
from repro.workloads.base import attach
from repro.workloads.synthetic import ConstantWorkload
from repro.hw.node import Node
from repro.virt.hypervisor import Hypervisor
from repro.core.controller import VirtualFrequencyController

from conftest import emit

RUN_S = 120.0


def _provision(node, hv):
    vms = {}
    for k in range(20):
        vm = hv.provision(SMALL, f"small-{k}")
        attach(vm, ConstantWorkload(2, level=1.0))
        vms[vm.name] = vm
    for k in range(10):
        vm = hv.provision(LARGE, f"large-{k}")
        attach(vm, ConstantWorkload(4, level=1.0))
        vms[vm.name] = vm
    return vms


def _mean_mhz(node, vms, prefix):
    vals = []
    for name, vm in vms.items():
        if not name.startswith(prefix):
            continue
        for vcpu in vm.vcpus:
            share = vcpu.entity.allocated / 0.5
            core = node.last_core_of(vcpu.tid)
            vals.append(share * node.core_frequency_mhz(core))
    return sum(vals) / len(vals)


def _run_vmdfs():
    node = Node(CHETEMI, seed=2)
    hv = Hypervisor(node)
    vms = _provision(node, hv)
    vmdfs = VmdfsController(node.fs)
    for vm in vms.values():
        vmdfs.watch(vm)
    sim = Simulation(node, hv, dt=0.5)
    for k in range(int(RUN_S * 2)):
        sim.run(0.5)
        if k % 2 == 1:
            vmdfs.tick(float(k // 2 + 1))
    return node, vms


def _run_vfreq():
    node = Node(CHETEMI, seed=2)
    hv = Hypervisor(node)
    vms = _provision(node, hv)
    ctrl = VirtualFrequencyController(
        node.fs, node.procfs, node.sysfs,
        num_cpus=node.spec.logical_cpus, fmax_mhz=node.spec.fmax_mhz,
    )
    for vm in vms.values():
        ctrl.register_vm(vm.name, vm.template.vfreq_mhz)
    sim = Simulation(node, hv, controller=ctrl, dt=0.5)
    sim.run(RUN_S)
    return node, vms


def test_vmdfs_cannot_differentiate(once):
    (node_v, vms_v), (node_c, vms_c) = once(lambda: (_run_vmdfs(), _run_vfreq()))

    rows = [
        [
            "VMDFS-style shares",
            f"{_mean_mhz(node_v, vms_v, 'small'):.0f}",
            f"{_mean_mhz(node_v, vms_v, 'large'):.0f}",
        ],
        [
            "VF controller (paper)",
            f"{_mean_mhz(node_c, vms_c, 'small'):.0f}",
            f"{_mean_mhz(node_c, vms_c, 'large'):.0f}",
        ],
        ["(purchased)", "500", "1800"],
    ]
    emit(
        render_table(
            ["policy", "small vCPU MHz", "large vCPU MHz"],
            rows,
            title="Differentiated frequencies: 20 small + 10 large, contended chetemi",
        )
    )

    # VMDFS: the split is driven by observed usage, i.e. it reproduces
    # the stock CFS outcome (small vCPUs ~2x large) and is completely
    # insensitive to what the owners purchased — large VMs stay far
    # below their 1800 MHz, small far above their 500 MHz.
    v_small = _mean_mhz(node_v, vms_v, "small")
    v_large = _mean_mhz(node_v, vms_v, "large")
    assert v_large < 0.55 * 1800.0
    assert v_small > 2.0 * 500.0

    # The paper's controller separates them as purchased
    c_small = _mean_mhz(node_c, vms_c, "small")
    c_large = _mean_mhz(node_c, vms_c, "large")
    assert abs(c_small - 500.0) / 500.0 < 0.2
    assert abs(c_large - 1800.0) / 1800.0 < 0.2
