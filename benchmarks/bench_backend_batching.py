"""Backend batching — syscall budget of the monitoring/enforcement path.

The paper reports monitoring as the dominant iteration cost (§IV-A2:
4 ms of a 5 ms loop).  The :class:`~repro.core.backend.HostBackend`
attacks exactly that term: the tid→cgroup topology is immutable between
VM churn events, so it is scanned once and cached (one listdir per tick
acts as the churn guard); per-core frequency reads are deduplicated
within a batch; and ``cpu.max`` rewrites of an unchanged quota are
skipped.  ``batched=False`` reproduces the seed access pattern — a full
directory walk plus per-vCPU tid/frequency reads and unconditional
writes — so the two modes are directly comparable on the same workload.

Two claims, both asserted:

* on a steady 8 VM x 4 vCPU host the batched backend issues strictly
  fewer kernel-surface operations per tick than the seed walk;
* batching changes *how* values are read, never the values: the full
  report stream of the Fig. 6 scenario is identical in both modes.

``BENCH_SMOKE=1`` shrinks both runs to a few ticks for CI.
"""

import os

from repro.cgroups.fs import CgroupVersion
from repro.core.controller import VirtualFrequencyController
from repro.hw.node import Node
from repro.hw.nodespecs import CHETEMI
from repro.sim.engine import Simulation
from repro.sim.report import render_table
from repro.virt.hypervisor import Hypervisor
from repro.virt.template import VMTemplate
from repro.workloads.base import attach
from repro.workloads.synthetic import ConstantWorkload

from conftest import emit

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

NUM_VMS = 8
VCPUS = 4
TEMPLATE = VMTemplate("bench", vcpus=VCPUS, vfreq_mhz=1200.0)
#: Ticks measured after the warm-up tick (the batched mode pays its
#: one-off topology scan there, like a real controller would at boot).
TICKS = 3 if SMOKE else 20
FIG6_DURATION = 40.0 if SMOKE else 120.0


def _build_host(batched):
    node = Node(CHETEMI, cgroup_version=CgroupVersion.V2, seed=3)
    hypervisor = Hypervisor(node)
    controller = VirtualFrequencyController(
        node.fs,
        node.procfs,
        node.sysfs,
        num_cpus=node.spec.logical_cpus,
        fmax_mhz=node.spec.fmax_mhz,
    )
    controller.backend.batched = batched
    for k in range(NUM_VMS):
        vm = hypervisor.provision(TEMPLATE, f"bench-{k}")
        controller.register_vm(vm.name, TEMPLATE.vfreq_mhz)
        # Half the VMs run flat out, half idle along — so some quotas
        # converge (exercising the skip-unchanged path) while others
        # keep moving.
        attach(vm, ConstantWorkload(VCPUS, level=1.0 if k % 2 == 0 else 0.1))
    return node, hypervisor, controller


def _ops_per_tick(batched):
    node, hypervisor, controller = _build_host(batched)
    sim = Simulation(node, hypervisor, controller=controller, dt=0.5)
    sim.run(1.0)  # warm-up tick: topology scan + first quota writes
    before = controller.backend.stats.copy()
    sim.run(float(TICKS))
    delta = controller.backend.stats - before
    return delta, len(controller.reports) - 1


def test_batched_backend_issues_fewer_ops(once):
    def run():
        seed_ops, seed_ticks = _ops_per_tick(batched=False)
        batched_ops, batched_ticks = _ops_per_tick(batched=True)
        return seed_ops, seed_ticks, batched_ops, batched_ticks

    seed_ops, seed_ticks, batched_ops, batched_ticks = once(run)
    assert seed_ticks == batched_ticks > 0

    rows = []
    for op in ("fs_reads", "fs_writes", "fs_listdirs", "proc_reads", "sysfs_reads"):
        s = getattr(seed_ops, op) / seed_ticks
        b = getattr(batched_ops, op) / batched_ticks
        rows.append([op, f"{s:.1f}", f"{b:.1f}",
                     f"{(1 - b / s) * 100:.0f} %" if s else "-"])
    rows.append([
        "total",
        f"{seed_ops.total_ops / seed_ticks:.1f}",
        f"{batched_ops.total_ops / batched_ticks:.1f}",
        f"{(1 - batched_ops.total_ops / seed_ops.total_ops) * 100:.0f} %",
    ])
    emit(render_table(
        ["kernel-surface op", "seed walk /tick", "batched /tick", "saved"],
        rows,
        title=f"backend batching, {NUM_VMS} VMs x {VCPUS} vCPUs, {seed_ticks} ticks",
    ))

    # The acceptance bar: strictly fewer filesystem operations per tick.
    assert batched_ops.total_ops < seed_ops.total_ops
    # And each individually-targeted saving is real, not traded away:
    assert batched_ops.fs_listdirs < seed_ops.fs_listdirs  # churn guard
    assert batched_ops.fs_reads < seed_ops.fs_reads  # no per-vCPU tid re-read
    assert batched_ops.sysfs_reads < seed_ops.sysfs_reads  # per-core dedup
    assert batched_ops.fs_writes < seed_ops.fs_writes  # skip-unchanged
    assert batched_ops.cap_writes_skipped > 0


def _report_signature(report):
    return (
        report.t,
        tuple(report.samples),
        dict(report.decisions),
        dict(report.allocations),
        report.market_initial,
        report.auction,
        report.freely_distributed,
        dict(report.wallets),
    )


def _fig6_reports(batched):
    from repro.sim.scenario import eval1_chetemi

    scenario = eval1_chetemi(
        duration=FIG6_DURATION, time_scale=0.1, iterations=3, dt=0.5
    )
    sim = scenario.build(controlled=True)
    sim.controller.backend.batched = batched
    sim.run(scenario.duration)
    return [_report_signature(r) for r in sim.controller.reports]


def test_reports_identical_to_seed_path(once):
    """Batching is an I/O optimisation only — every observed sample,
    decision and allocation of the Fig. 6 scenario is bit-identical
    (timings excluded: wall-clock necessarily differs)."""

    def run():
        return _fig6_reports(batched=False), _fig6_reports(batched=True)

    seed_reports, batched_reports = once(run)
    assert len(seed_reports) == len(batched_reports) > 0
    for seed_sig, batched_sig in zip(seed_reports, batched_reports):
        assert seed_sig == batched_sig
    emit(
        f"fig.6 report stream: {len(seed_reports)} iterations identical "
        f"between seed walk and batched backend"
    )
