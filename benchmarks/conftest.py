"""Shared helpers for the reproduction benches.

Each bench regenerates one of the paper's tables or figures and prints
it (captured by ``pytest -s`` or the tee'd bench log).  Figure benches
run the underlying scenario exactly once inside ``benchmark.pedantic``;
micro-benches (controller overhead) use normal benchmark rounds.
"""

from __future__ import annotations

import pathlib
import sys

import pytest

#: All bench artefacts are also appended here for EXPERIMENTS.md.
ARTEFACT_LOG = pathlib.Path(__file__).parent / "artefacts.log"

#: CSV exports of every figure's underlying data land here.
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def results_path(name: str) -> pathlib.Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR / name


def emit(text: str) -> None:
    """Print a bench artefact so it survives pytest's capture.

    Written to the process's real stderr (bypassing pytest's capsys) and
    appended to ``benchmarks/artefacts.log``.
    """
    out = "\n" + text + "\n"
    sys.__stderr__.write(out)
    with ARTEFACT_LOG.open("a") as fh:
        fh.write(out)


@pytest.fixture
def once(benchmark):
    """Run an expensive scenario exactly once under pytest-benchmark."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
