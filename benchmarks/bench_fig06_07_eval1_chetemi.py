"""Figs. 6 & 7 — average vCPU frequency on *chetemi*, configurations A/B.

Protocol (Table II): 20 small (2 vCPU @ 500 MHz) + 10 large (4 vCPU @
1800 MHz), compress-7zip everywhere, large instances start at t = 200 s.

Paper shapes to reproduce:
* A (Fig. 6): small ~2400 MHz alone, then *faster than large* under
  contention (CFS splits per VM); large never near 1800.
* B (Fig. 7): small plateau ~500 MHz, large plateau ~1800 MHz, small
  spikes when large dip; core-frequency variance stays tens of MHz.
"""

import numpy as np

from repro.sim.export import series_to_csv
from repro.sim.report import render_table, series_to_rows
from repro.sim.scenario import eval1_chetemi

from conftest import emit, results_path

DURATION = 600.0


def _run():
    scenario = eval1_chetemi(duration=DURATION, dt=0.5)
    return scenario.run(controlled=False), scenario.run(controlled=True)


def test_fig06_fig07(once):
    res_a, res_b = once(_run)

    for res, fig, csv_name in (
        (res_a, "Fig. 6 (config A)", "fig06_chetemi_A.csv"),
        (res_b, "Fig. 7 (config B)", "fig07_chetemi_B.csv"),
    ):
        series = {
            "small MHz": res.group_freq_series("small"),
            "large MHz": res.group_freq_series("large"),
        }
        headers, rows = series_to_rows(series, step_s=50.0, t_max=DURATION)
        emit(render_table(headers, rows, title=f"{fig} — avg vCPU frequency, chetemi"))
        emit(f"  mean cross-core frequency std: {res.mean_core_freq_std_mhz:.1f} MHz")
        series_to_csv(results_path(csv_name), series)

    # -- paper-shape assertions (same bands as the paper's narrative) -----
    a_small = res_a.plateau_mhz("small", 300, DURATION)
    a_large = res_a.plateau_mhz("large", 300, DURATION)
    b_small = res_b.plateau_mhz("small", 300, DURATION)
    b_large = res_b.plateau_mhz("large", 300, DURATION)
    emit(
        render_table(
            ["config", "small plateau (paper)", "large plateau (paper)"],
            [
                ["A", f"{a_small:.0f} (~1600)", f"{a_large:.0f} (~800)"],
                ["B", f"{b_small:.0f} (~500)", f"{b_large:.0f} (~1800)"],
            ],
            title="Steady state after t=300 s",
        )
    )
    assert a_small > a_large * 1.5
    assert abs(b_small - 500.0) / 500.0 < 0.25
    assert abs(b_large - 1800.0) / 1800.0 < 0.20
