"""Cluster-plane scale benches: 1000 nodes end to end (ISSUE 8).

Two measurements back the shared-memory shard telemetry, the SoA
rebalance views and the vectorized planner fast path:

1. ``chaos1000`` — the 1000-node / 50k-VM chaos+churn scenario, static
   vs rebalanced, with the rebalance loop on the arrays dialect.  The
   headline budget: the per-round control-loop cost the cluster
   actually blocks on — snapshot (view build) + plan — must fit inside
   one 1 s control period at p50.  A one-round scalar-vs-vectorized
   cross-check asserts the fast path changes latency, never plans.
   Lands in ``benchmarks/results/BENCH_rebalance.json``.

2. ``node_curve`` — seconds per full cluster tick as the node count
   grows (64 / 256 / 1000), for the threaded ``NodeManager`` and the
   process-sharded ``ShardedNodeManager`` in both telemetry modes
   (pickled reports vs shared-memory).  The sharded/shared tick at the
   largest point carries the same 1 s hard budget.  The threaded vs
   sharded crossover is asserted only on multi-core machines — shards
   cannot beat a thread pool on one core, so ``cpu_count`` is recorded
   with the curve.  Lands in ``benchmarks/results/BENCH_controller.json``.

Both sections (and their ``*_smoke`` twins under ``BENCH_SMOKE=1``, the
``make bench-cluster-smoke`` gate) are compared against the committed
repo-root baselines by ``check_perf_regression.py``; every
``*_seconds_per_tick`` / ``*_seconds_per_round`` leaf is gated.
"""

import functools
import json
import os
import time
from statistics import median

from repro.core.config import ControllerConfig
from repro.core.controller import VirtualFrequencyController
from repro.hw.node import Node
from repro.hw.nodespecs import NodeSpec
from repro.sim.node_manager import NodeManager, Shard, ShardedNodeManager
from repro.sim.report import render_table
from repro.sim.scenario import ClusterScenario, chaos_churn_xl
from repro.virt.hypervisor import Hypervisor
from repro.virt.template import VMTemplate

from conftest import emit, results_path

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

#: one control period — the end-to-end budget at every scale
CONTROL_PERIOD_S = 1.0


def _suffix():
    return "_smoke" if SMOKE else ""


def _merge(filename, name, section):
    out_path = results_path(filename)
    existing = {}
    if out_path.exists():
        existing = json.loads(out_path.read_text())
    existing[name + _suffix()] = section
    out_path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")


# -- 1. chaos1000: the 1000-node control loop ------------------------------------


def _chaos_scenario(rebalance):
    if SMOKE:
        # Same shape, 1/16 the cluster: the smoke gate watches the same
        # leaves without the 50k-VM construction cost.
        return ClusterScenario(
            name="chaos-churn-64",
            nodes=64,
            vms=3_200,
            duration=30.0,
            seed=7,
            degrade_rate_per_s=0.1,
            rebalance=rebalance,
        )
    return chaos_churn_xl(rebalance=rebalance, duration=60.0)


def test_chaos1000_control_loop_budget(once):
    """Static vs rebalanced at the 1000-node scale point; the loop's
    snapshot+plan p50 must fit one control period."""

    def run():
        static = _chaos_scenario(rebalance=False).run()
        scenario = _chaos_scenario(rebalance=True)
        cluster, loop = scenario.build()
        try:
            rebalanced = cluster.run(loop)
        finally:
            loop.close()

        # One extra round, both dialects, same seed: the vectorized
        # planner fast path must produce the identical plan.
        view = cluster.rebalance_view()
        arrays = cluster.rebalance_arrays()
        scalar_plan = loop.planner.plan(view, seed=1234)
        soa_plan = loop.planner.plan(arrays, seed=1234)
        assert soa_plan.moves == scalar_plan.moves, "dialects diverged"
        assert soa_plan.skipped == scalar_plan.skipped

        t0 = time.perf_counter()
        cluster.rebalance_view()
        view_build_s = time.perf_counter() - t0
        return static, rebalanced, loop, view_build_s

    static, rebalanced, loop, view_build_s = once(run)

    assert loop.rounds_total > 0
    snap = sorted(loop.snapshot_durations)
    plans = sorted(loop.plan_durations)
    both = sorted(
        s + p for s, p in zip(loop.snapshot_durations, loop.plan_durations)
    )
    view_plan_p50 = median(both)
    improvement = static.total_bad_vm_seconds / max(
        rebalanced.total_bad_vm_seconds, 1e-9
    )

    section = {
        "nodes": static.nodes,
        "vms": rebalanced.final_vms,
        "duration_s": static.duration_s,
        "cpu_count": os.cpu_count(),
        "dialect": "arrays",
        "control_period_s": CONTROL_PERIOD_S,
        "static": static.to_dict(),
        "rebalanced": rebalanced.to_dict(),
        "improvement_factor": improvement,
        "snapshot_seconds_per_round": median(snap),
        "plan_seconds_per_round": median(plans),
        "view_plan_p50_seconds_per_round": view_plan_p50,
        "max_round_seconds": max(loop.round_durations),
        #: reference: what one frozen-dataclass snapshot costs here
        "view_dialect_snapshot_seconds": view_build_s,
    }
    _merge("BENCH_rebalance.json", "chaos1000", section)

    emit(
        render_table(
            ["metric", "value"],
            [
                ["nodes / VMs", f"{static.nodes} / {rebalanced.final_vms}"],
                ["rounds", str(loop.rounds_total)],
                ["snapshot p50", f"{median(snap) * 1e3:.1f} ms"],
                ["plan p50", f"{median(plans) * 1e3:.1f} ms"],
                ["snapshot+plan p50", f"{view_plan_p50 * 1e3:.1f} ms"],
                ["view-dialect snapshot", f"{view_build_s * 1e3:.1f} ms"],
                ["budget", f"{CONTROL_PERIOD_S * 1e3:.0f} ms"],
                ["migrations", str(rebalanced.migrations)],
                ["improvement", f"{improvement:.2f}x"],
            ],
            title=(
                f"chaos{static.nodes} control loop "
                f"({'smoke' if SMOKE else 'full'})"
            ),
        )
    )

    assert view_plan_p50 < CONTROL_PERIOD_S, (
        f"snapshot+plan p50 {view_plan_p50:.3f}s blows the "
        f"{CONTROL_PERIOD_S}s control period"
    )


# -- 2. node_curve: threaded vs sharded full cluster tick ------------------------

NODE_COUNTS = (8,) if SMOKE else (64, 256, 1000)
VMS_PER_NODE = 2
CLUSTER_TICKS = 3

#: deliberately small host: the curve scales the *node count*, so each
#: node carries just enough controller work to make the plane visible
_CURVE_SPEC = NodeSpec(
    name="curvenode",
    cpu_model="bench",
    sockets=1,
    cores_per_socket=4,
    threads_per_core=1,
    fmax_mhz=2400.0,
    fmin_mhz=1200.0,
    memory_mb=32 * 1024,
    freq_jitter_mhz=0.0,
)

_TENANT = VMTemplate("tenant1", vcpus=1, vfreq_mhz=500.0)


def _curve_node(seed):
    node = Node(_CURVE_SPEC, seed=seed)
    hv = Hypervisor(node, enforce_admission=False)
    ctrl = VirtualFrequencyController(
        node.fs, node.procfs, node.sysfs,
        num_cpus=_CURVE_SPEC.logical_cpus, fmax_mhz=_CURVE_SPEC.fmax_mhz,
        config=ControllerConfig.paper_evaluation(engine="bulk"),
    )
    ctrl.keep_reports = False
    for k in range(VMS_PER_NODE):
        vm = hv.provision(_TENANT, f"vm-{k}")
        ctrl.register_vm(vm.name, _TENANT.vfreq_mhz)
        vm.set_uniform_demand(0.4 + 0.05 * (k % 8))
    return node, ctrl


def _build_group(node_ids):
    nodes, controllers = [], {}
    for nid in node_ids:
        node, ctrl = _curve_node(100 + int(nid.split("-")[1]))
        nodes.append(node)
        controllers[nid] = ctrl
    return nodes, controllers


def _shard_factory(node_ids):
    nodes, controllers = _build_group(node_ids)

    def pre_tick(t):
        for node in nodes:
            node.step(1.0)

    return Shard(controllers, pre_tick=pre_tick)


def _shard_map(num_nodes):
    node_ids = [f"node-{i}" for i in range(num_nodes)]
    num_shards = min(num_nodes, 8)
    groups = [node_ids[i::num_shards] for i in range(num_shards)]
    return {
        f"shard-{i}": functools.partial(_shard_factory, tuple(group))
        for i, group in enumerate(groups)
    }


def _measure_threaded(num_nodes):
    node_ids = [f"node-{i}" for i in range(num_nodes)]
    nodes, controllers = _build_group(node_ids)
    manager = NodeManager(controllers, parallel=True)

    def one_tick(t):
        for node in nodes:
            node.step(1.0)
        return manager.tick(t)

    one_tick(1.0)  # warm
    walls = []
    for k in range(CLUSTER_TICKS):
        t0 = time.perf_counter()
        one_tick(float(k + 2))
        walls.append(time.perf_counter() - t0)
    stats = manager.backend_stats()
    manager.close()
    return median(walls), max(walls), stats


def _measure_sharded(num_nodes, telemetry):
    with ShardedNodeManager(
        _shard_map(num_nodes), telemetry=telemetry
    ) as manager:
        manager.tick(1.0)  # warm (workers built by __enter__)
        walls = []
        for k in range(CLUSTER_TICKS):
            t0 = time.perf_counter()
            manager.tick(float(k + 2))
            walls.append(time.perf_counter() - t0)
        stats = manager.backend_stats()
        # The compact lane must still serve full reports on demand.
        if telemetry == "shared":
            report = manager.fetch_report("node-0")
            assert report is not None and report.allocations
    return median(walls), max(walls), stats


def test_node_scaling_curve(once):
    """Threaded vs sharded (reports and shared-memory telemetry) full
    cluster tick at growing node counts; the shared-memory tick at the
    largest point must fit one control period."""

    def run():
        curve = {}
        shm_worst_at_max = None
        for n in NODE_COUNTS:
            threaded, _, threaded_stats = _measure_threaded(n)
            reports, _, reports_stats = _measure_sharded(n, "reports")
            shm, shm_worst, shm_stats = _measure_sharded(n, "shared")
            # All three planes drove identical clusters: the backend
            # counters they aggregate must match exactly.
            assert threaded_stats == reports_stats == shm_stats, (
                f"{n} nodes: planes diverged"
            )
            curve[str(n)] = {
                "num_shards": min(n, 8),
                "threaded_seconds_per_tick": threaded,
                "sharded_reports_seconds_per_tick": reports,
                "sharded_shm_seconds_per_tick": shm,
            }
            shm_worst_at_max = shm_worst
        return curve, shm_worst_at_max

    curve, shm_worst_at_max = once(run)
    max_nodes = str(max(NODE_COUNTS))

    section = {
        "vms_per_node": VMS_PER_NODE,
        "ticks": CLUSTER_TICKS,
        "cpu_count": os.cpu_count(),
        "control_period_s": CONTROL_PERIOD_S,
        "max_nodes": int(max_nodes),
        "sharded_shm_max_tick_seconds": shm_worst_at_max,
        "nodes": curve,
    }
    _merge("BENCH_controller.json", "node_curve", section)

    emit(
        render_table(
            ["nodes", "shards", "threaded", "sharded (reports)",
             "sharded (shm)"],
            [
                [
                    n,
                    row["num_shards"],
                    f"{row['threaded_seconds_per_tick'] * 1e3:.1f} ms",
                    f"{row['sharded_reports_seconds_per_tick'] * 1e3:.1f} ms",
                    f"{row['sharded_shm_seconds_per_tick'] * 1e3:.1f} ms",
                ]
                for n, row in curve.items()
            ],
            title=(
                f"cluster tick vs node count "
                f"({VMS_PER_NODE} VMs/node, {os.cpu_count()} cores)"
            ),
        )
    )

    assert shm_worst_at_max < CONTROL_PERIOD_S, (
        f"sharded/shm tick at {max_nodes} nodes: worst "
        f"{shm_worst_at_max:.3f}s blows the {CONTROL_PERIOD_S}s period"
    )
    cores = os.cpu_count() or 1
    if cores >= 2 and not SMOKE:
        # With real parallelism the process shards must win at scale —
        # the crossover the curve exists to show.  One core cannot.
        top = curve[max_nodes]
        assert (
            top["sharded_shm_seconds_per_tick"]
            < top["threaded_seconds_per_tick"]
        ), f"no crossover at {max_nodes} nodes on {cores} cores"
