"""Figs. 10 & 11 — compress-7zip efficiency of the *small* instances on
chetemi and chiclet, configurations A vs B, 15 iterations.

Timeline note: scores need the whole benchmark run; we compress the
protocol with ``time_scale=0.2`` (work and start times alike), which
preserves iteration-by-iteration shape: the first iterations agree
between A and B (no contention yet), then the controller caps the small
instances at their guarantee while A keeps giving them the larger CFS
share, and after the large instances finish the small ones speed back
up.  Scores are MHz-equivalents (work per wall-second); 7-Zip's MIPS is
proportional.
"""

import numpy as np

from repro.sim.export import scores_to_csv
from repro.sim.report import render_table, scores_rows
from repro.sim.scenario import eval1_chetemi, eval1_chiclet

from conftest import emit, results_path

SCALE = 0.2
DURATION = 3500.0


def _run(builder):
    scenario = builder(
        duration=DURATION, time_scale=SCALE, dt=0.5, run_to_completion=True
    )
    return scenario.run(controlled=False), scenario.run(controlled=True)


def _emit_figure(fig, node, res_a, res_b):
    table = {
        "small A": res_a.scores_by_group["small"],
        "small B": res_b.scores_by_group["small"],
        "large A": res_a.scores_by_group["large"],
        "large B": res_b.scores_by_group["large"],
    }
    headers, rows = scores_rows(table)
    emit(
        render_table(
            headers,
            rows,
            title=f"{fig} — compress scores on {node} (MHz-equivalents/iteration)",
        )
    )
    scores_to_csv(results_path(f"{fig.lower().replace('. ', '')}_{node}.csv"), table)


def test_fig10_chetemi_scores(once):
    res_a, res_b = once(_run, eval1_chetemi)
    _emit_figure("Fig. 10", "chetemi", res_a, res_b)

    small_a = res_a.scores_by_group["small"]
    small_b = res_b.scores_by_group["small"]
    large_a = res_a.scores_by_group["large"]
    large_b = res_b.scores_by_group["large"]
    # uncontended head: A ~ B
    assert np.allclose(small_a[1:3], small_b[1:3], rtol=0.2)
    # contended window: B capped at guarantee, below A's CFS bonus
    assert small_b[3:6].mean() < small_a[3:6].mean() * 0.75
    # large instances: B wins and stays near the guaranteed rate
    assert large_b[3:].mean() > large_a[3:].mean() * 1.4


def test_fig11_chiclet_scores(once):
    res_a, res_b = once(_run, eval1_chiclet)
    _emit_figure("Fig. 11", "chiclet", res_a, res_b)

    small_b = res_b.scores_by_group["small"]
    large_b = res_b.scores_by_group["large"]
    # Paper: "executions of scenario B on chetemi and chiclet ... give
    # almost identical performances" — B small contended iterations track
    # 2 x 500 MHz on both nodes.
    contended = small_b[3:6].mean()
    assert 0.6 * 1000.0 <= contended <= 1.4 * 1000.0
    assert np.all(large_b[3:] >= 0.7 * 4 * 1800.0)
