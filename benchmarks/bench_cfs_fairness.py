"""§IV-A2's side experiments a) and b) — how CFS divides CPU time.

a) 20 VMs x 4 vCPUs on 40 CPUs: all vCPUs run at the same speed.
b) 40 VMs x 1 vCPU + 10 VMs x 4 vCPUs: 4/5 of the CPU time goes to the
   single-vCPU VMs — "the Linux CFS scheduler assumes the VMs as a
   whole, and not directly the vCPUs".
"""

import numpy as np

from repro.sim.report import render_table
from tests.conftest import make_host, TINY
from repro.hw.nodespecs import CHETEMI
from repro.cgroups.fs import CgroupFS, CgroupVersion
from repro.sched.cfs import CfsScheduler
from repro.sched.entity import SchedEntity

from conftest import emit


def _build(shapes, num_cpus):
    fs = CgroupFS(CgroupVersion.V2)
    fs.makedirs("/machine.slice")
    entities = []
    for i, vcpus in enumerate(shapes):
        for j in range(vcpus):
            path = f"/machine.slice/vm{i}/vcpu{j}"
            fs.makedirs(path)
            entities.append(SchedEntity(tid=1000 + 100 * i + j, cgroup_path=path, demand=1.0))
    return fs, entities


def _experiment_a():
    fs, entities = _build([4] * 20, 40)
    CfsScheduler(fs, 40).schedule(entities, dt=1.0)
    allocs = np.array([e.allocated for e in entities])
    return allocs


def _experiment_b():
    shapes = [1] * 40 + [4] * 10
    fs, entities = _build(shapes, 40)
    CfsScheduler(fs, 40).schedule(entities, dt=1.0)
    single = sum(e.allocated for e in entities[:40])
    total = sum(e.allocated for e in entities)
    return single, total


def test_experiment_a_equal_speed(benchmark):
    allocs = benchmark(_experiment_a)
    emit(
        render_table(
            ["metric", "value"],
            [
                ["vCPU allocation mean", f"{allocs.mean():.3f} core"],
                ["vCPU allocation spread", f"{allocs.std():.2e}"],
            ],
            title="Experiment a): 20 VMs x 4 vCPUs — all equal",
        )
    )
    assert np.allclose(allocs, allocs[0])


def test_experiment_b_vm_level_fairness(benchmark):
    single, total = benchmark(_experiment_b)
    share = single / total
    emit(
        render_table(
            ["metric", "value", "paper"],
            [["1-vCPU VMs' share of CPU time", f"{share:.3f}", "4/5"]],
            title="Experiment b): 40x1 vCPU + 10x4 vCPU VMs",
        )
    )
    assert abs(share - 0.8) < 0.01
