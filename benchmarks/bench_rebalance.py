"""Headline rebalancer benchmark: chaos+churn, static vs rebalanced.

The claim under test (ISSUE 7): on a 200-node / 10 000-VM cluster with
Poisson VM churn and capacity-degradation chaos events, the
frequency-guarantee-aware rebalancer keeps cumulative guarantee-
violation time (VM-seconds above Eq. 7 capacity, plus the downtime the
migrations themselves inflict) materially below static placement.

Both runs share one fully-seeded scenario (identical arrival, lifetime
and chaos streams — the only difference is whether the
:class:`~repro.rebalance.loop.RebalanceLoop` is attached), so the
comparison isolates the control plane.  Results land in
``benchmarks/results/BENCH_rebalance.json``: the full 200-node section
as ``chaos200``, the 8-node CI smoke section as ``chaos_smoke``
(``BENCH_SMOKE=1``, the ``make bench-rebalance-smoke`` gate).  The
``planner_seconds_per_round`` leaf is gated by
``check_perf_regression.py`` against the committed repo-root
``BENCH_rebalance.json`` baseline.
"""

import json
import os

from repro.sim.report import render_table
from repro.sim.scenario import chaos_churn, chaos_churn_small

from conftest import emit, results_path

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

#: The rebalancer must cut total bad VM-seconds at least this much.
MIN_IMPROVEMENT = 1.25


def _scenario(rebalance: bool):
    if SMOKE:
        return chaos_churn_small(rebalance=rebalance)
    return chaos_churn(rebalance=rebalance)


def _run_pair():
    static = _scenario(rebalance=False).run()
    scenario = _scenario(rebalance=True)
    cluster, loop = scenario.build()
    try:
        rebalanced = cluster.run(loop)
    finally:
        loop.close()
    return static, rebalanced, loop


def test_rebalancer_vs_static_placement(benchmark):
    static, rebalanced, loop = benchmark.pedantic(
        _run_pair, rounds=1, iterations=1
    )

    assert rebalanced.migrations > 0, "rebalancer never acted"
    improvement = static.total_bad_vm_seconds / max(
        rebalanced.total_bad_vm_seconds, 1e-9
    )
    rounds = loop.round_durations
    planner_seconds = sum(rounds) / len(rounds) if rounds else 0.0
    worst_round = max(rounds) if rounds else 0.0

    section = {
        "nodes": static.nodes,
        "duration_s": static.duration_s,
        "static": static.to_dict(),
        "rebalanced": rebalanced.to_dict(),
        "improvement_factor": improvement,
        "planner_seconds_per_round": planner_seconds,
        "max_round_seconds": worst_round,
        "migrations_by_reason": dict(sorted(loop.migrations_total.items())),
        "migrations_rejected": loop.migrations_rejected,
    }
    out_path = results_path("BENCH_rebalance.json")
    existing = {}
    if out_path.exists():
        existing = json.loads(out_path.read_text())
    existing["chaos_smoke" if SMOKE else "chaos200"] = section
    out_path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")

    emit(
        render_table(
            ["run", "violation VM-s", "downtime VM-s", "total VM-s",
             "migrations"],
            [
                ["static", f"{static.violation_vm_seconds:.0f}",
                 f"{static.downtime_vm_seconds:.1f}",
                 f"{static.total_bad_vm_seconds:.0f}", "0"],
                ["rebalanced", f"{rebalanced.violation_vm_seconds:.0f}",
                 f"{rebalanced.downtime_vm_seconds:.1f}",
                 f"{rebalanced.total_bad_vm_seconds:.0f}",
                 str(rebalanced.migrations)],
                ["improvement", f"{improvement:.2f}x", "",
                 f"planner {planner_seconds * 1e3:.1f} ms/round", ""],
            ],
            title=(
                f"chaos+churn {static.nodes} nodes "
                f"({'smoke' if SMOKE else 'full'}), "
                f"{static.duration_s:g} s, {loop.rounds_total} rounds"
            ),
        )
    )

    assert improvement >= MIN_IMPROVEMENT, (
        f"rebalancer improvement {improvement:.2f}x below the "
        f"{MIN_IMPROVEMENT}x floor vs static placement"
    )
