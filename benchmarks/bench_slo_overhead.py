"""SLO-plane overhead at the 1000-node cluster plane.

The plane's cluster scrape path — seqlock snapshot of the shared-memory
shard blocks, vectorized column ingest into the time-series ladder, and
the full burn-rate + anomaly evaluation pass — must be a negligible
slice of the paper's 1 s control period even at the node-curve's
largest point.  This bench publishes 1000 synthetic node rows per tick
through a real :class:`ShardTelemetryWriter`/``Reader`` pair and times
``SLOPlane.observe_cluster`` alone (the writer side is covered by
``bench_cluster_scale.py``).

Results land in ``benchmarks/results/BENCH_slo.json``: the full
1000-node section as ``slo1000``, the 64-node CI smoke section as
``slo_smoke`` (``BENCH_SMOKE=1``, the ``make bench-slo-smoke`` gate).
The ``observe_p50_seconds_per_tick`` leaf is gated relatively by
``check_perf_regression.py`` against the committed repo-root
``BENCH_slo.json`` baseline AND carries a hard budget: the p50 scrape
must fit inside one control period outright.
"""

import json
import os
import random
import time

from repro.core.backend import BackendStats
from repro.obs.slo import SLOConfig, SLOPlane
from repro.sim.report import render_table
from repro.sim.shard_telemetry import (
    ShardTelemetryReader,
    ShardTelemetryWriter,
)

from conftest import emit, results_path

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
NODES = 64 if SMOKE else 1000
VMS_PER_NODE = 4 if SMOKE else 10
TICKS = 12 if SMOKE else 40
CONTROL_PERIOD_S = 1.0


class _StubTimings:
    __slots__ = ("monitor", "estimate", "credits", "auction",
                 "distribute", "enforce")

    def __init__(self, rng):
        for stage in self.__slots__:
            setattr(self, stage, rng.uniform(0.0001, 0.002))


class _StubSample:
    __slots__ = ("vm_name", "cgroup_path")

    def __init__(self, vm_name):
        self.vm_name = vm_name
        self.cgroup_path = f"/vfreq/{vm_name}"


class _StubReport:
    __slots__ = ("timings", "samples", "allocations")

    def __init__(self, rng, vm_names):
        self.timings = _StubTimings(rng)
        self.samples = [_StubSample(name) for name in vm_names]
        self.allocations = {
            f"/vfreq/{name}": rng.uniform(100.0, 1200.0)
            for name in vm_names
        }


class _StubController:
    __slots__ = ("_vm_vfreq", "num_cpus", "fmax_mhz", "invariant_checker")

    def __init__(self, vm_names):
        self._vm_vfreq = {name: 600.0 for name in vm_names}
        self.num_cpus = 8
        self.fmax_mhz = 2400.0
        self.invariant_checker = None


class _StubManager:
    """Just enough surface for the writer's publish + the plane's
    reader-dialect ``observe_cluster`` (a sharded manager stand-in)."""

    def __init__(self, nodes, vms_per_node):
        self.controllers = {}
        self.last_reports = {}
        self.last_errors = {}
        self.readers = {}
        self._vm_names = {}
        for n in range(nodes):
            node_id = f"node-{n:04d}"
            vm_names = [f"{node_id}-vm-{j}" for j in range(vms_per_node)]
            self.controllers[node_id] = _StubController(vm_names)
            self._vm_names[node_id] = vm_names

    def step(self, rng):
        for node_id, vm_names in self._vm_names.items():
            self.last_reports[node_id] = _StubReport(rng, vm_names)

    def backend_stats(self):
        return BackendStats()

    def invariant_totals(self):
        return (0, 0)


def _run():
    rng = random.Random(20260807)
    manager = _StubManager(NODES, VMS_PER_NODE)
    writer = ShardTelemetryWriter()
    reader = ShardTelemetryReader()
    manager.readers["shard-0"] = reader
    plane = SLOPlane(SLOConfig(period_s=CONTROL_PERIOD_S))
    observe = []
    transitions = 0
    try:
        for tick in range(1, TICKS + 1):
            manager.step(rng)
            reader.update(*writer.publish(manager, float(tick)))
            start = time.perf_counter()
            transitions += len(
                plane.observe_cluster(manager, tick, t=float(tick))
            )
            observe.append(time.perf_counter() - start)
        # The plane really ingested the full fleet, objectlessly.
        assert len(plane.store.select("tick_seconds")) == NODES
        assert plane.store.increase(
            "tick_deadline_checks_total", TICKS
        ) > 0.0
        assert reader.snapshot_retries == 0  # no writer contention here
    finally:
        plane.close()
        reader.close()
        writer.close(unlink=True)
    observe.sort()
    return {
        "nodes": NODES,
        "vms": NODES * VMS_PER_NODE,
        "ticks": TICKS,
        "series": len(plane.store),
        "alert_transitions": transitions,
        "control_period_s": CONTROL_PERIOD_S,
        "observe_p50_seconds_per_tick": observe[len(observe) // 2],
        "observe_p90_seconds_per_tick": observe[int(len(observe) * 0.9)],
        "max_tick_seconds": observe[-1],
    }


def test_slo_plane_scrape_fits_control_period(once):
    section = once(_run)

    out_path = results_path("BENCH_slo.json")
    existing = {}
    if out_path.exists():
        existing = json.loads(out_path.read_text())
    existing["slo_smoke" if SMOKE else "slo1000"] = section
    out_path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")

    emit(render_table(
        ["nodes", "VMs", "series", "p50 ms", "p90 ms", "max ms",
         "budget ms"],
        [[
            str(section["nodes"]), str(section["vms"]),
            str(section["series"]),
            f"{section['observe_p50_seconds_per_tick'] * 1e3:.3f}",
            f"{section['observe_p90_seconds_per_tick'] * 1e3:.3f}",
            f"{section['max_tick_seconds'] * 1e3:.3f}",
            f"{CONTROL_PERIOD_S * 1e3:.0f}",
        ]],
        title="SLO plane observe_cluster cost "
              f"({'smoke' if SMOKE else 'full'})",
    ))

    # Hard claim, independent of any baseline: the whole scrape +
    # evaluate pass fits one control period with room to spare.
    assert section["max_tick_seconds"] < CONTROL_PERIOD_S
