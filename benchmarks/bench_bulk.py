"""Bulk-engine and sharded-control-plane benches.

Three measurements back the bulk-array backend API (docs/api.md):

1. full-tick cost of all three engines at the paper's dense-host size —
   the ``bulk`` engine must beat the scalar reference on the *whole*
   tick (stages 1 and 6 included), not just the vectorised middle;
2. a 10k-VM single-process ``bulk`` tick, which must fit inside one
   1 s control period — the paper's "negligible fraction of the
   period" requirement (§III-B2) pushed to cloud-host density;
3. the node-scaling curve of the threaded ``NodeManager`` versus the
   process-sharded ``ShardedNodeManager`` driving the same cluster.

All numbers land in ``benchmarks/results/BENCH_controller.json``
(sections ``bulk``/``tick10k``/``sharded``, ``*_smoke`` variants under
``BENCH_SMOKE=1``) and are gated against the committed repo-root
baseline by ``check_perf_regression.py``.
"""

import functools
import json
import os
import time
from statistics import median

from repro.core.config import ControllerConfig
from repro.core.controller import VirtualFrequencyController
from repro.hw.node import Node
from repro.hw.nodespecs import NodeSpec
from repro.sim.node_manager import NodeManager, Shard, ShardedNodeManager
from repro.sim.report import render_table
from repro.virt.hypervisor import Hypervisor
from repro.virt.template import VMTemplate

from bench_scaling import _controller_host, _stage25
from conftest import emit, results_path

PERF_SMOKE = bool(os.environ.get("BENCH_SMOKE"))

#: one control period — the hard budget every tick must fit inside
CONTROL_PERIOD_S = 1.0

# -- shared helpers --------------------------------------------------------------


def _suffix():
    return "_smoke" if PERF_SMOKE else ""


def _merge_section(name, section):
    out_path = results_path("BENCH_controller.json")
    existing = {}
    if out_path.exists():
        existing = json.loads(out_path.read_text())
    existing[name + _suffix()] = section
    out_path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")


def _stage_costs(reports):
    """Median per-tick stage costs — robust to scheduler/GC spikes, so
    the regression gate sees the recurring cost, not one noisy tick."""
    return {
        "stage1_seconds_per_tick": median(r.timings.monitor for r in reports),
        "stage2_5_seconds_per_tick": median(_stage25(r.timings) for r in reports),
        "stage6_seconds_per_tick": median(r.timings.enforce for r in reports),
        "total_seconds_per_tick": median(r.timings.total for r in reports),
    }


# -- 1. three-engine full-tick comparison ----------------------------------------

ENGINE_VMS = 24 if PERF_SMOKE else 160
ENGINE_TICKS = 8 if PERF_SMOKE else 25


def _measure_engine(engine):
    node, ctrl = _controller_host(ENGINE_VMS, engine=engine)
    t = 1.0
    for _ in range(ctrl.config.history_len + 1):
        node.step(1.0)
        t += 1.0
        ctrl.tick(t)
    reports = []
    for _ in range(ENGINE_TICKS):
        node.step(1.0)
        t += 1.0
        reports.append(ctrl.tick(t))
    return _stage_costs(reports), reports


def test_bulk_full_tick_speedup(once):
    """Scalar vs vectorized vs bulk full-tick cost; records the ``bulk``
    baseline section.  The report streams must be bit-identical — the
    speedup may not come from computing something else."""

    def compare():
        return {engine: _measure_engine(engine)
                for engine in ("scalar", "vectorized", "bulk")}

    measured = once(compare)

    _, vector_reports = measured["vectorized"]
    _, bulk_reports = measured["bulk"]
    for i, (a, b) in enumerate(zip(vector_reports, bulk_reports)):
        assert a.allocations == b.allocations, f"tick {i}: allocations differ"
        assert a.wallets == b.wallets, f"tick {i}: wallets differ"
        assert a.market_initial == b.market_initial, f"tick {i}"
        assert a.freely_distributed == b.freely_distributed, f"tick {i}"

    costs = {engine: m[0] for engine, m in measured.items()}
    speedup = (
        costs["scalar"]["total_seconds_per_tick"]
        / costs["bulk"]["total_seconds_per_tick"]
    )
    section = {
        "num_vms": ENGINE_VMS,
        "ticks": ENGINE_TICKS,
        "speedup_total_vs_scalar": speedup,
        **costs,
    }
    _merge_section("bulk", section)

    emit(
        render_table(
            ["engine", "stage 1", "stage 2-5", "stage 6", "total / tick"],
            [
                [
                    engine,
                    f"{c['stage1_seconds_per_tick'] * 1e3:.3f} ms",
                    f"{c['stage2_5_seconds_per_tick'] * 1e3:.3f} ms",
                    f"{c['stage6_seconds_per_tick'] * 1e3:.3f} ms",
                    f"{c['total_seconds_per_tick'] * 1e3:.3f} ms",
                ]
                for engine, c in costs.items()
            ]
            + [["bulk vs scalar", "", "", "", f"{speedup:.2f}x"]],
            title=f"full-tick engine comparison at {ENGINE_VMS} VMs",
        )
    )
    if not PERF_SMOKE:
        # at full density the array path must win the *whole* tick
        assert speedup > 1.0, (
            f"bulk full tick ({costs['bulk']['total_seconds_per_tick'] * 1e3:.2f} ms)"
            f" not faster than scalar"
            f" ({costs['scalar']['total_seconds_per_tick'] * 1e3:.2f} ms)"
        )


# -- 2. the 10k-VM single-process tick -------------------------------------------

TICK10K_VMS = 2_000 if PERF_SMOKE else 10_000
TICK10K_TICKS = 5


def _dense_host(num_vms):
    """One fat host packed with single-vCPU VMs under the bulk engine."""
    spec = NodeSpec(
        name="dense10k",
        cpu_model="bench",
        sockets=2,
        cores_per_socket=32,
        threads_per_core=2,
        fmax_mhz=2400.0,
        fmin_mhz=1200.0,
        memory_mb=2048 * 1024,
        freq_jitter_mhz=0.0,
    )
    node = Node(spec, seed=1)
    hv = Hypervisor(node, enforce_admission=False)
    ctrl = VirtualFrequencyController(
        node.fs, node.procfs, node.sysfs,
        num_cpus=spec.logical_cpus, fmax_mhz=spec.fmax_mhz,
        config=ControllerConfig.paper_evaluation(engine="bulk"),
    )
    ctrl.keep_reports = False
    template = VMTemplate("tenant", vcpus=1, vfreq_mhz=100.0)
    for k in range(num_vms):
        vm = hv.provision(template, f"t-{k}")
        ctrl.register_vm(vm.name, template.vfreq_mhz)
        vm.set_uniform_demand(0.4 + 0.1 * (k % 7))
    return node, ctrl


def test_tick_10k_inside_control_period(once):
    """A 10k-VM host must tick well inside one 1 s control period in a
    single process — the density target the bulk interface exists for."""

    def run():
        node, ctrl = _dense_host(TICK10K_VMS)
        t = 1.0
        for _ in range(ctrl.config.history_len + 1):
            node.step(1.0)
            t += 1.0
            ctrl.tick(t)
        reports, walls = [], []
        for _ in range(TICK10K_TICKS):
            node.step(1.0)
            t += 1.0
            t0 = time.perf_counter()
            reports.append(ctrl.tick(t))
            walls.append(time.perf_counter() - t0)
        return reports, walls

    reports, walls = once(run)
    section = {
        "num_vms": TICK10K_VMS,
        "ticks": TICK10K_TICKS,
        "engine": "bulk",
        "control_period_s": CONTROL_PERIOD_S,
        "max_tick_seconds": max(walls),
        **_stage_costs(reports),
    }
    _merge_section("tick10k", section)

    emit(
        render_table(
            ["VMs", "mean tick", "worst tick", "budget"],
            [[
                TICK10K_VMS,
                f"{section['total_seconds_per_tick'] * 1e3:.1f} ms",
                f"{max(walls) * 1e3:.1f} ms",
                f"{CONTROL_PERIOD_S * 1e3:.0f} ms",
            ]],
            title="single-process bulk tick at cloud density",
        )
    )
    assert max(walls) < CONTROL_PERIOD_S, (
        f"worst tick {max(walls):.3f}s blows the {CONTROL_PERIOD_S}s control period"
    )


# -- 3. threaded vs sharded control-plane scaling --------------------------------

NODE_COUNTS = (2,) if PERF_SMOKE else (2, 4, 8)
VMS_PER_NODE = 4 if PERF_SMOKE else 16
CLUSTER_TICKS = 5

_CLUSTER_SPEC = NodeSpec(
    name="shardnode",
    cpu_model="bench",
    sockets=1,
    cores_per_socket=8,
    threads_per_core=2,
    fmax_mhz=2400.0,
    fmin_mhz=1200.0,
    memory_mb=128 * 1024,
    freq_jitter_mhz=0.0,
)

_TENANT = VMTemplate("tenant2", vcpus=2, vfreq_mhz=500.0)


def _cluster_node(seed, vms_per_node):
    node = Node(_CLUSTER_SPEC, seed=seed)
    hv = Hypervisor(node, enforce_admission=False)
    ctrl = VirtualFrequencyController(
        node.fs, node.procfs, node.sysfs,
        num_cpus=_CLUSTER_SPEC.logical_cpus, fmax_mhz=_CLUSTER_SPEC.fmax_mhz,
        config=ControllerConfig.paper_evaluation(engine="bulk"),
    )
    ctrl.keep_reports = False
    for k in range(vms_per_node):
        vm = hv.provision(_TENANT, f"vm-{k}")
        ctrl.register_vm(vm.name, _TENANT.vfreq_mhz)
        vm.set_uniform_demand(0.4 + 0.05 * (k % 8))
    return node, ctrl


def _build_group(node_ids, vms_per_node):
    """Nodes + controllers for a shard (also used in-process for the
    threaded comparison — both planes run identical clusters)."""
    nodes, controllers = [], {}
    for nid in node_ids:
        seed = 100 + int(nid.split("-")[1])
        node, ctrl = _cluster_node(seed, vms_per_node)
        nodes.append(node)
        controllers[nid] = ctrl
    return nodes, controllers


def _shard_factory(node_ids, vms_per_node):
    nodes, controllers = _build_group(node_ids, vms_per_node)

    def pre_tick(t):
        for node in nodes:
            node.step(1.0)

    return Shard(controllers, pre_tick=pre_tick)


def _shard_map(num_nodes, vms_per_node):
    node_ids = [f"node-{i}" for i in range(num_nodes)]
    num_shards = min(num_nodes, 4)
    groups = [node_ids[i::num_shards] for i in range(num_shards)]
    return {
        f"shard-{i}": functools.partial(_shard_factory, tuple(group), vms_per_node)
        for i, group in enumerate(groups)
    }


def _measure_threaded(num_nodes, vms_per_node, ticks):
    node_ids = [f"node-{i}" for i in range(num_nodes)]
    nodes, controllers = _build_group(node_ids, vms_per_node)
    manager = NodeManager(controllers, parallel=True)

    def one_tick(t):
        for node in nodes:
            node.step(1.0)
        return manager.tick(t)

    one_tick(1.0)  # warm
    walls, result = [], None
    for k in range(ticks):
        t0 = time.perf_counter()
        result = one_tick(float(k + 2))
        walls.append(time.perf_counter() - t0)
    return median(walls), result


def _measure_sharded(num_nodes, vms_per_node, ticks):
    with ShardedNodeManager(_shard_map(num_nodes, vms_per_node)) as manager:
        manager.tick(1.0)  # warm (workers already built by __enter__)
        walls, result = [], None
        for k in range(ticks):
            t0 = time.perf_counter()
            result = manager.tick(float(k + 2))
            walls.append(time.perf_counter() - t0)
    return median(walls), result


def test_sharded_node_scaling(once):
    """Seconds per cluster tick, threaded vs process-sharded, as the
    node count grows.  The two planes must agree on every allocation."""

    def run():
        curve = {}
        for n in NODE_COUNTS:
            threaded_cost, threaded_last = _measure_threaded(
                n, VMS_PER_NODE, CLUSTER_TICKS
            )
            sharded_cost, sharded_last = _measure_sharded(
                n, VMS_PER_NODE, CLUSTER_TICKS
            )
            assert not threaded_last.errors and not sharded_last.errors
            for nid, report in threaded_last.items():
                assert report.allocations == sharded_last[nid].allocations, (
                    f"{n} nodes: {nid} diverged between planes"
                )
            curve[str(n)] = {
                "num_shards": min(n, 4),
                "threaded_seconds_per_tick": threaded_cost,
                "sharded_seconds_per_tick": sharded_cost,
            }
        return curve

    curve = once(run)
    _merge_section(
        "sharded",
        {"vms_per_node": VMS_PER_NODE, "ticks": CLUSTER_TICKS, "nodes": curve},
    )

    emit(
        render_table(
            ["nodes", "shards", "threaded / tick", "sharded / tick"],
            [
                [
                    n,
                    row["num_shards"],
                    f"{row['threaded_seconds_per_tick'] * 1e3:.1f} ms",
                    f"{row['sharded_seconds_per_tick'] * 1e3:.1f} ms",
                ]
                for n, row in curve.items()
            ],
            title=f"control-plane scaling at {VMS_PER_NODE} VMs/node",
        )
    )
