"""Observability-hub overhead — the price of the flight recorder.

The hub (:mod:`repro.obs`) works *post hoc*: stages run unmodified and
a disabled hub costs the tick exactly one ``is None`` check, so the
off-by-default path must be free.  Enabled, every tick is folded into
span tree + decision ledger + flight frame, and the paper's overhead
budget (§IV-A2) is the yardstick: the controller — observability
included — must stay a negligible slice of its own control period.

Asserted claims:

* **off is free**: mean tick cost with no hub attached stays within
  noise (< 5 %) of the seed controller — measured interleaved,
  min-of-repeats, so scheduler jitter cannot fake a regression;
* **on fits the period budget**: full-fidelity recording (per-vCPU
  spans, ledger, flight frames) adds < 5 % of one control period per
  tick — the paper-aligned bound an operator actually budgets for;
* the hub really observed: one ledger entry, one flight frame and one
  span tree per tick (an accidentally-detached hub would "win" the
  bench with zero work).

``BENCH_SMOKE=1`` shrinks the run for CI.
"""

import os
import time

from repro.core.config import ControllerConfig
from repro.core.controller import VirtualFrequencyController
from repro.hw.node import Node
from repro.hw.nodespecs import NodeSpec
from repro.obs import ObsConfig
from repro.sim.report import render_table
from repro.virt.hypervisor import Hypervisor
from repro.virt.template import VMTemplate

from conftest import emit, results_path

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
TICKS = 40 if SMOKE else 120
VMS = 10 if SMOKE else 24
REPEATS = 2 if SMOKE else 3

#: Off-path noise envelope: a detached hub is one pointer check.
OFF_FACTOR_MAX = 1.05
#: On-path budget: extra seconds per tick, as a fraction of the
#: control period the controller must fit into.
ON_PERIOD_FRACTION_MAX = 0.05

SPEC = NodeSpec(
    name="bench-obs",
    cpu_model="bench host",
    sockets=1,
    cores_per_socket=8,
    threads_per_core=2,
    fmax_mhz=2400.0,
    fmin_mhz=1200.0,
    memory_mb=64 * 1024,
    freq_jitter_mhz=0.0,
)

VARIANTS = (
    ("off", None),
    ("disabled hub", ObsConfig(
        tracing=False, ledger=False, flight_recorder_ticks=0
    )),
    ("on (full fidelity)", ObsConfig()),
    ("on (no per-vcpu spans)", ObsConfig(per_vcpu_spans=False)),
)


def _run(obs_config):
    node = Node(SPEC, seed=3)
    hv = Hypervisor(node, enforce_admission=False)
    config = ControllerConfig.paper_evaluation(observability=obs_config)
    ctrl = VirtualFrequencyController(
        node.fs,
        node.procfs,
        node.sysfs,
        num_cpus=SPEC.logical_cpus,
        fmax_mhz=SPEC.fmax_mhz,
        config=config,
    )
    per_vm = SPEC.capacity_mhz / (VMS + 1)
    for k in range(VMS):
        vm = hv.provision(
            VMTemplate("t", vcpus=1, vfreq_mhz=min(1000.0, per_vm)), f"vm-{k}"
        )
        ctrl.register_vm(vm.name, vm.template.vfreq_mhz)
        vm.set_uniform_demand(0.8)
    elapsed = 0.0
    for t in range(TICKS):
        node.step(1.0)
        t0 = time.perf_counter()
        ctrl.tick(float(t))
        elapsed += time.perf_counter() - t0
    return ctrl, elapsed / TICKS


def test_obs_overhead(once):
    def run_interleaved():
        best = {name: float("inf") for name, _ in VARIANTS}
        ctrls = {}
        for _ in range(REPEATS):
            for name, obs_config in VARIANTS:
                ctrl, mean_s = _run(obs_config)
                if mean_s < best[name]:
                    best[name] = mean_s
                ctrls[name] = ctrl
        return best, ctrls

    best, ctrls = once(run_interleaved)

    off_s = best["off"]
    full = ctrls["on (full fidelity)"]
    period_s = full.config.period_s

    # The instrumented runs really recorded everything.
    assert ctrls["off"].obs is None
    disabled = ctrls["disabled hub"].obs
    assert disabled is not None
    assert disabled.tracer is None
    assert disabled.ledger is None
    assert disabled.recorder is None
    for name in ("on (full fidelity)", "on (no per-vcpu spans)"):
        obs = ctrls[name].obs
        assert obs is not None
        assert len(obs.ledger.ticks) == TICKS
        assert len(obs.recorder.frames) == min(TICKS, obs.recorder.max_ticks)
        assert obs.ring.trace_ids()[-1] == TICKS - 1
    full_spans = ctrls["on (full fidelity)"].obs.tracer.spans_emitted
    lean_spans = ctrls["on (no per-vcpu spans)"].obs.tracer.spans_emitted
    assert full_spans > lean_spans  # per-vCPU fidelity really differs

    rows = []
    for name, _ in VARIANTS:
        mean_s = best[name]
        extra_s = mean_s - off_s
        rows.append([
            name,
            f"{mean_s * 1e3:.3f}",
            f"{mean_s / off_s:.3f}x",
            f"{100.0 * max(extra_s, 0.0) / period_s:.4f}%",
        ])
    table = render_table(
        ["hub", "mean tick ms", "vs off", "of control period"],
        rows,
        title=f"observability overhead, {VMS} VMs x {TICKS} ticks, "
              f"min of {REPEATS} interleaved repeats "
              f"(period {period_s:g} s)",
    )
    emit(table)
    with results_path("bench_obs_overhead.csv").open("w") as fh:
        fh.write("variant,mean_tick_s,factor_vs_off,period_fraction\n")
        for name, _ in VARIANTS:
            extra = max(best[name] - off_s, 0.0)
            fh.write(
                f"{name},{best[name]:.9f},{best[name] / off_s:.4f},"
                f"{extra / period_s:.6f}\n"
            )

    # Gate 1: a disabled hub is free (noise envelope only) — both
    # sides measured interleaved, min-of-repeats.
    off_factor = best["disabled hub"] / off_s
    assert off_factor < OFF_FACTOR_MAX, (
        f"disabled-hub tick is {off_factor:.3f}x the bare controller"
    )
    # Gate 2: full-fidelity recording fits the paper's period budget.
    for name in ("on (full fidelity)", "on (no per-vcpu spans)"):
        extra_s = best[name] - off_s
        fraction = extra_s / period_s
        assert fraction < ON_PERIOD_FRACTION_MAX, (
            f"{name}: +{extra_s * 1e3:.3f} ms/tick is "
            f"{100 * fraction:.2f}% of the {period_s:g} s control period"
        )
