"""Ablation — Burst-VM baseline vs the virtual frequency controller.

Quantifies the §II criticism on a half-loaded node: one VM runs a heavy
sustained workload while the rest of the node idles.  The burst VM
exhausts its credits and drops to the 10 % baseline; the controller
keeps reselling the idle neighbours' cycles, so throughput stays high.
"""

from repro.sim.engine import Simulation
from repro.sim.report import render_table
from repro.virt.burst import BurstPolicy, BurstVMController
from repro.virt.template import VMTemplate
from repro.workloads.base import attach
from repro.workloads.compress7zip import Compress7Zip
from repro.workloads.synthetic import IdleWorkload
from tests.conftest import make_host

from conftest import emit

WORKER = VMTemplate("worker", vcpus=2, vfreq_mhz=1200.0)
NEIGHBOR = VMTemplate("sleeper", vcpus=2, vfreq_mhz=1200.0)
RUN_S = 240.0
WORK = Compress7Zip  # heavy phased workload


def _throughput(vm):
    return sum(s.work_mhz_s for s in vm.workload.scores)


def _run_burst():
    node, hv, _ = make_host()
    worker = hv.provision(WORKER, "worker")
    sleeper = hv.provision(NEIGHBOR, "sleeper")
    attach(worker, WORK(2, iterations=100, work_per_iteration_mhz_s=50_000.0))
    attach(sleeper, IdleWorkload(2))
    burst = BurstVMController(node.fs, BurstPolicy(initial_credits=30.0))
    burst.watch(worker)
    burst.watch(sleeper)
    sim = Simulation(node, hv, dt=0.5)
    for k in range(int(RUN_S * 2)):
        sim.run(0.5)
        if k % 2 == 1:
            burst.tick({"worker": worker, "sleeper": sleeper}, dt=1.0)
    return _throughput(worker), burst.credits_of("worker")


def _run_controller():
    node, hv, ctrl = make_host()
    worker = hv.provision(WORKER, "worker")
    sleeper = hv.provision(NEIGHBOR, "sleeper")
    ctrl.register_vm("worker", WORKER.vfreq_mhz)
    ctrl.register_vm("sleeper", NEIGHBOR.vfreq_mhz)
    attach(worker, WORK(2, iterations=100, work_per_iteration_mhz_s=50_000.0))
    attach(sleeper, IdleWorkload(2))
    sim = Simulation(node, hv, controller=ctrl, dt=0.5)
    sim.run(RUN_S)
    return _throughput(worker)


def test_burst_vs_controller_throughput(once):
    burst_tp, credits_left, ctrl_tp = once(
        lambda: (*_run_burst(), _run_controller())
    )
    emit(
        render_table(
            ["policy", "work done (MHz*s)", "notes"],
            [
                ["Burst VM (EC2-style)", f"{burst_tp:,.0f}", f"credits left: {credits_left:.0f} s"],
                ["VF controller (paper)", f"{ctrl_tp:,.0f}", "resells idle neighbour cycles"],
            ],
            title="Heavy workload on a half-idle node, 240 s",
        )
    )
    # The burst VM collapses to the baseline once broke; the controller
    # keeps the worker near full speed — at least 2x the throughput.
    assert credits_left == 0.0
    assert ctrl_tp > 2.0 * burst_tp
