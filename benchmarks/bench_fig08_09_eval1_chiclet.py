"""Figs. 8 & 9 — average vCPU frequency on *chiclet*, configurations A/B.

Protocol (Table III): 32 small + 16 large on the AMD EPYC node; same
workload shapes as chetemi.  Paper shape: identical plateaus to chetemi
in B (500/1800 MHz) despite completely different hardware; the A-side
imbalance is present but "less obvious"; core-frequency variance larger
(88-150 MHz) than on the Xeon node.
"""

from repro.sim.export import series_to_csv
from repro.sim.report import render_table, series_to_rows
from repro.sim.scenario import eval1_chiclet

from conftest import emit, results_path

DURATION = 600.0


def _run():
    scenario = eval1_chiclet(duration=DURATION, dt=0.5)
    return scenario.run(controlled=False), scenario.run(controlled=True)


def test_fig08_fig09(once):
    res_a, res_b = once(_run)

    for res, fig, csv_name in (
        (res_a, "Fig. 8 (config A)", "fig08_chiclet_A.csv"),
        (res_b, "Fig. 9 (config B)", "fig09_chiclet_B.csv"),
    ):
        series = {
            "small MHz": res.group_freq_series("small"),
            "large MHz": res.group_freq_series("large"),
        }
        headers, rows = series_to_rows(series, step_s=50.0, t_max=DURATION)
        emit(render_table(headers, rows, title=f"{fig} — avg vCPU frequency, chiclet"))
        emit(f"  mean cross-core frequency std: {res.mean_core_freq_std_mhz:.1f} MHz")
        series_to_csv(results_path(csv_name), series)

    b_small = res_b.plateau_mhz("small", 300, DURATION)
    b_large = res_b.plateau_mhz("large", 300, DURATION)
    a_small = res_a.plateau_mhz("small", 300, DURATION)
    a_large = res_a.plateau_mhz("large", 300, DURATION)
    emit(
        render_table(
            ["config", "small plateau", "large plateau"],
            [["A", f"{a_small:.0f}", f"{a_large:.0f}"], ["B", f"{b_small:.0f}", f"{b_large:.0f}"]],
            title="Steady state after t=300 s (chiclet)",
        )
    )
    assert a_small > a_large  # priority inversion, "less obvious" is fine
    assert abs(b_small - 500.0) / 500.0 < 0.25
    assert abs(b_large - 1800.0) / 1800.0 < 0.20
    # chiclet's per-core jitter is larger than chetemi's (paper: 88-150 MHz)
    assert res_b.mean_core_freq_std_mhz > 30.0
