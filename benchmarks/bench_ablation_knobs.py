"""Ablation — the controller knobs the paper discusses qualitatively.

§III-B2: "The higher the increase factor, the faster the convergence ...
but also the higher the resource wastage"; "the decrease factor should
not be too big [or] some sort of oscillation" appears.  §III-B4's window
"is used to avoid that a rich VM steals all the cycles".

This bench quantifies those trade-offs on a step workload: a VM idles,
then jumps to full demand.  Reported per setting:

* settle iterations — controller iterations from the step until the
  vCPU's capping first covers 90 % of a core;
* waste — cycles allocated but not consumed, summed over the run.
"""

from dataclasses import replace

from repro.core.config import ControllerConfig
from repro.sim.engine import Simulation
from repro.sim.report import render_table
from repro.virt.template import VMTemplate
from repro.workloads.base import attach
from repro.workloads.synthetic import SineWorkload, StepWorkload
from tests.conftest import make_host

from conftest import emit

VM = VMTemplate("stepper", vcpus=1, vfreq_mhz=2300.0)
STEP_AT = 20.0


def _run_step(config):
    node, hv, ctrl = make_host(config=config)
    vm = hv.provision(VM, "vm")
    ctrl.register_vm(vm.name, VM.vfreq_mhz)
    attach(vm, StepWorkload(1, times=[STEP_AT], levels=[0.02, 1.0]))
    sim = Simulation(node, hv, controller=ctrl, dt=0.5)
    sim.run(80.0)
    path = vm.vcpus[0].cgroup_path

    settle = None
    waste = 0.0
    for report in ctrl.reports:
        alloc = report.allocations.get(path, 0.0)
        used = report.samples[0].consumed_cycles if report.samples else 0.0
        waste += max(0.0, alloc - used)
        if settle is None and report.t > STEP_AT and alloc >= 0.9e6:
            settle = report.t - STEP_AT
    return settle, waste / 1e6


def _run_sine(config):
    """Oscillation metric: std of the applied capping under a smooth load."""
    node, hv, ctrl = make_host(config=config)
    vm = hv.provision(VM, "vm")
    ctrl.register_vm(vm.name, VM.vfreq_mhz)
    attach(vm, SineWorkload(1, mean=0.5, amplitude=0.3, period=60.0))
    sim = Simulation(node, hv, controller=ctrl, dt=0.5)
    sim.run(120.0)
    path = vm.vcpus[0].cgroup_path
    allocs = [r.allocations.get(path, 0.0) for r in ctrl.reports[10:]]
    import numpy as np

    return float(np.std(np.diff(allocs))) / 1e6


def _sweep():
    base = ControllerConfig.paper_evaluation()
    increase_rows = []
    for mult in (1.2, 1.5, 2.0, 4.0):
        settle, waste = _run_step(replace(base, increase_mult=mult))
        increase_rows.append([f"x{mult}", f"{settle:.0f} it" if settle else "never", f"{waste:.2f}"])
    decrease_rows = []
    for mult in (0.5, 0.8, 0.95):
        wobble = _run_sine(replace(base, decrease_mult=mult))
        decrease_rows.append([f"x{mult}", f"{wobble:.3f}"])
    return increase_rows, decrease_rows


def test_increase_and_decrease_factors(once):
    increase_rows, decrease_rows = once(_sweep)
    emit(
        render_table(
            ["increase factor", "settle time", "wasted core-seconds"],
            increase_rows,
            title="Ablation: increase factor (fast convergence vs waste)",
        )
    )
    emit(
        render_table(
            ["decrease factor", "capping wobble (cores/it)"],
            decrease_rows,
            title="Ablation: decrease factor (oscillation)",
        )
    )
    # faster increase factor converges at least as fast
    settle_slow = float(increase_rows[0][1].split()[0])
    settle_fast = float(increase_rows[-1][1].split()[0])
    assert settle_fast <= settle_slow
    # aggressive decrease wobbles at least as much as the paper's gentle 0.95
    wobble_aggressive = float(decrease_rows[0][1])
    wobble_gentle = float(decrease_rows[-1][1])
    assert wobble_gentle <= wobble_aggressive + 1e-6


def _window_fairness(window_frac):
    """Two greedy VMs, one with far more credits: how evenly does a round
    of auctions split a scarce market?"""
    from repro.core.auction import run_auction
    from repro.core.credits import CreditLedger

    ledger = CreditLedger(ControllerConfig.paper_evaluation())
    ledger.accrue("rich", [0.0], 5_000_000)
    ledger.accrue("poor", [0.0], 400_000)
    out = run_auction(
        market=800_000.0,
        demands={"/rich": 800_000.0, "/poor": 800_000.0},
        vm_of={"/rich": "rich", "/poor": "poor"},
        ledger=ledger,
        window=window_frac * 1e6,
    )
    rich = out.purchased.get("/rich", 0.0)
    poor = out.purchased.get("/poor", 0.0)
    return poor / (rich + poor)


def test_auction_window(once):
    fractions = (1.0, 0.1, 0.01)
    shares = once(lambda: [_window_fairness(f) for f in fractions])
    emit(
        render_table(
            ["window (frac of a core)", "poor VM's share of the market"],
            [[str(f), f"{s:.2f}"] for f, s in zip(fractions, shares)],
            title="Ablation: auction window (anti rich-VM-steals-all)",
        )
    )
    # a whole-core window lets the rich VM take everything; small windows
    # let the poor VM spend its full wallet
    assert shares[0] < 0.05
    assert shares[-1] > 0.4
