"""Fault resilience — degraded-mode guarantees under an injected fault mix.

Three nodes run under one :class:`~repro.sim.node_manager.NodeManager`:

* **node-chaos** — the standard fault mix (probabilistic EIO/EBUSY,
  clock jitter, thread churn) *plus* one injected controller crash at
  the monitoring boundary; recovered via snapshot restore +
  ``replace_node``.
* **node-faulty** — a scheduled occlusion: one vCPU's ``cpu.stat``
  returns EIO for a fixed window, long enough to force degraded mode.
* **node-clean** — no faults; the control group.

Claims, all asserted:

* the control plane never dies: every healthy node reports on every
  tick, and the crashed controller loses exactly its crash tick;
* an unobservable vCPU falls back to its Eq. 2 guarantee ``C_i`` while
  degraded, and the unprotected gap (ticks with neither a live
  allocation nor a fallback) is bounded by the policy's
  ``degraded_after_ticks``;
* fault and resilience counters surface in the Prometheus export.

``BENCH_SMOKE=1`` shrinks the run for CI.
"""

import os

from repro.core.config import ControllerConfig
from repro.core.controller import VirtualFrequencyController
from repro.core.metrics_export import render_controller, render_node_manager
from repro.core.resilience import ResiliencePolicy
from repro.core.snapshot import from_json, to_json
from repro.core.units import guaranteed_cycles
from repro.faults import ControllerCrash, FaultInjector, FaultPlan, FaultSpec
from repro.hw.node import Node
from repro.hw.nodespecs import NodeSpec
from repro.sim.node_manager import NodeManager
from repro.sim.report import render_table
from repro.virt.hypervisor import Hypervisor
from repro.virt.template import VMTemplate

from conftest import emit

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

SPEC = NodeSpec(
    name="bench-tiny",
    cpu_model="bench 4-thread CPU",
    sockets=1,
    cores_per_socket=2,
    threads_per_core=2,
    fmax_mhz=2400.0,
    fmin_mhz=1200.0,
    memory_mb=16 * 1024,
    freq_jitter_mhz=0.0,
)
TEMPLATE = VMTemplate("rb", vcpus=1, vfreq_mhz=1200.0)
VMS_PER_NODE = 3
TICKS = 12 if SMOKE else 40
CRASH_TICK = 5
OCCLUDE = (4, 9)  # [start, end) ticks of the scheduled occlusion
OCCLUDED_PATH = "/machine.slice/faulty-0/vcpu0"
POLICY = ResiliencePolicy(
    write_retries=2, stale_sample_max_age=1, degraded_after_ticks=2
)


def _plans():
    chaos = FaultPlan.standard_mix(seed=9, crash_tick=CRASH_TICK)
    faulty = FaultPlan(
        [
            FaultSpec(
                "read_error",
                f"*{OCCLUDED_PATH}/cpu.stat",
                start_tick=OCCLUDE[0],
                end_tick=OCCLUDE[1],
                error="EIO",
            ),
            FaultSpec("write_error", "*/cpu.max", probability=0.05, error="EBUSY"),
        ],
        seed=17,
    )
    return {"node-chaos": chaos, "node-faulty": faulty, "node-clean": None}


def _build_node(node_id, plan, vm_prefix):
    node = Node(SPEC, seed=31)
    hv = Hypervisor(node)
    if plan is None:
        backend_args = (node.fs, node.procfs, node.sysfs)
        ctrl = VirtualFrequencyController(
            *backend_args,
            num_cpus=SPEC.logical_cpus,
            fmax_mhz=SPEC.fmax_mhz,
            config=ControllerConfig.paper_evaluation(),
            resilience=POLICY,
        )
        injector = None
    else:
        injector = FaultInjector(plan, node.fs, node.procfs, node.sysfs)
        ctrl = VirtualFrequencyController(
            injector,
            num_cpus=SPEC.logical_cpus,
            fmax_mhz=SPEC.fmax_mhz,
            config=ControllerConfig.paper_evaluation(),
            resilience=POLICY,
        )
    for k in range(VMS_PER_NODE):
        vm = hv.provision(TEMPLATE, f"{vm_prefix}-{k}")
        ctrl.register_vm(vm.name, TEMPLATE.vfreq_mhz)
        vm.set_uniform_demand(0.8)
    return node, hv, injector, ctrl


def _run_cluster():
    plans = _plans()
    hosts = {
        node_id: _build_node(node_id, plan, node_id.split("-", 1)[1])
        for node_id, plan in plans.items()
    }
    manager = NodeManager(
        {nid: h[3] for nid, h in hosts.items()}, parallel=False
    )
    snapshots = {}
    reports_by_node = {nid: [] for nid in hosts}
    crashes = recoveries = 0
    for k in range(TICKS):
        for node, _, _, _ in hosts.values():
            node.step(1.0)
        result = manager.tick(float(k + 1))
        for nid, report in result.items():
            reports_by_node[nid].append(report)
            snapshots[nid] = to_json(manager.controllers[nid])
        for nid, exc in result.errors.items():
            assert isinstance(exc, ControllerCrash), exc
            crashes += 1
            # Crash recovery: a fresh controller over the SAME kernel
            # surfaces (the injector persists, like a real host), state
            # restored from the last good snapshot.
            node, hv, injector, _ = hosts[nid]
            reborn = VirtualFrequencyController(
                injector,
                num_cpus=SPEC.logical_cpus,
                fmax_mhz=SPEC.fmax_mhz,
                config=ControllerConfig.paper_evaluation(),
                resilience=POLICY,
            )
            from_json(reborn, snapshots[nid])
            manager.replace_node(nid, reborn)
            hosts[nid] = (node, hv, injector, reborn)
            recoveries += 1
    manager.close()
    return hosts, manager, reports_by_node, crashes, recoveries


def test_controller_survives_the_fault_mix(once):
    hosts, manager, reports_by_node, crashes, recoveries = once(_run_cluster)

    # -- liveness: nobody dies, healthy nodes never miss a beat -------------
    assert crashes == 1 and recoveries == 1
    assert len(reports_by_node["node-clean"]) == TICKS
    assert len(reports_by_node["node-faulty"]) == TICKS
    assert len(reports_by_node["node-chaos"]) == TICKS - 1  # the crash tick
    for report in reports_by_node["node-clean"]:
        assert len(report.samples) == VMS_PER_NODE

    # -- degraded mode: occluded vCPU held at its Eq. 2 guarantee -----------
    c_i = guaranteed_cycles(1.0, TEMPLATE.vfreq_mhz, SPEC.fmax_mhz)
    faulty_ctrl = manager.controllers["node-faulty"]
    degraded_ticks = [
        r for r in reports_by_node["node-faulty"] if OCCLUDED_PATH in r.degraded
    ]
    assert degraded_ticks, "the occlusion never forced degraded mode"
    for r in degraded_ticks:
        assert abs(r.degraded[OCCLUDED_PATH] - c_i) < 1.0
        assert abs(r.allocations[OCCLUDED_PATH] - c_i) < 1.0
    stats = faulty_ctrl.resilience_stats
    assert stats.degraded_transitions >= 1
    assert stats.recoveries >= 1
    assert faulty_ctrl.degraded_vcpus == 0  # recovered by the end

    # -- bounded guarantee-violation time ------------------------------------
    unprotected = sum(
        1
        for r in reports_by_node["node-faulty"]
        if OCCLUDED_PATH not in r.allocations
    )
    assert unprotected <= POLICY.degraded_after_ticks

    # -- observability --------------------------------------------------------
    text = render_controller(faulty_ctrl)
    assert "vfreq_faults_injected_total" in text
    assert "vfreq_degraded_vcpus" in text
    assert "vfreq_resilience_events_total" in text
    cluster_text = render_node_manager(manager)
    assert 'vfreq_node_tick_errors_total{node="node-chaos"} 1' in cluster_text

    # -- the artefact table ----------------------------------------------------
    rows = []
    for nid in ("node-chaos", "node-faulty", "node-clean"):
        _, _, injector, ctrl = hosts[nid]
        st = ctrl.resilience_stats
        rows.append([
            nid,
            len(reports_by_node[nid]),
            manager.error_counts.get(nid, 0),
            sum(injector.injected.values()) if injector else 0,
            st.stale_samples_used,
            st.degraded_transitions,
            st.recoveries,
            st.write_retries,
            st.write_failures,
        ])
    emit(render_table(
        ["node", "reports", "tick errors", "faults fired", "stale used",
         "degraded", "recovered", "write retries", "write failures"],
        rows,
        title=(
            f"fault resilience, {TICKS} ticks, {VMS_PER_NODE} VMs/node, "
            f"crash@{CRASH_TICK}, occlusion ticks {OCCLUDE[0]}-{OCCLUDE[1] - 1}"
        ),
    ))
