"""Figs. 12, 13 & 14 — the heterogeneous second evaluation (Table V).

Protocol: 14 small (compress), 8 medium (openssl, start t = 100 s),
6 large (compress, start t = 200 s) on chetemi.

Paper shapes:
* A (Fig. 12): small fastest; medium and large at about the same speed.
* B (Fig. 13): three plateaus at 500 / 1200 / 1800 MHz while all three
  classes are busy; when the medium openssl run completes, its cycles
  flow to small and large and their frequency rises.
* Fig. 14: small compress scores — like Fig. 10 with a slightly larger
  squeeze (the paper notes a small extra drop for large instances).

The frequency figures run at the paper's own timeline (700 s window);
Fig. 14's full 15 iterations use a compressed run (time_scale = 0.2).
"""

import numpy as np

from repro.sim.export import scores_to_csv, series_to_csv
from repro.sim.report import render_table, scores_rows, series_to_rows
from repro.sim.scenario import eval2_chetemi

from conftest import emit, results_path

DURATION = 700.0


def _run_freqs():
    scenario = eval2_chetemi(duration=DURATION, dt=0.5)
    return scenario.run(controlled=False), scenario.run(controlled=True)


def _run_scores():
    scenario = eval2_chetemi(
        duration=3500.0, time_scale=0.2, dt=0.5, run_to_completion=True
    )
    return scenario.run(controlled=False), scenario.run(controlled=True)


def test_fig12_fig13_frequencies(once):
    res_a, res_b = once(_run_freqs)

    for res, fig, csv_name in (
        (res_a, "Fig. 12 (config A)", "fig12_eval2_A.csv"),
        (res_b, "Fig. 13 (config B)", "fig13_eval2_B.csv"),
    ):
        series = {
            "small MHz": res.group_freq_series("small"),
            "medium MHz": res.group_freq_series("medium"),
            "large MHz": res.group_freq_series("large"),
        }
        headers, rows = series_to_rows(series, step_s=50.0, t_max=DURATION)
        emit(render_table(headers, rows, title=f"{fig} — eval 2 on chetemi"))
        series_to_csv(results_path(csv_name), series)

    # All three classes are busy in [220, 290]: the large instances have
    # converged (~t=210) and medium's openssl run ends around t ~ 305 s.
    t0, t1 = 220.0, 290.0
    b_small = res_b.plateau_mhz("small", t0, t1)
    b_medium = res_b.plateau_mhz("medium", t0, t1)
    b_large = res_b.plateau_mhz("large", t0, t1)
    emit(
        render_table(
            ["class", "plateau MHz", "paper"],
            [
                ["small", f"{b_small:.0f}", "~500"],
                ["medium", f"{b_medium:.0f}", "~1200"],
                ["large", f"{b_large:.0f}", "~1800"],
            ],
            title="Fig. 13 plateaus (all classes busy)",
        )
    )
    assert b_small < b_medium < b_large
    assert abs(b_small - 500.0) / 500.0 < 0.35
    assert abs(b_medium - 1200.0) / 1200.0 < 0.30
    assert abs(b_large - 1800.0) / 1800.0 < 0.30

    # Config A: small fastest, medium ~ large (the paper's CFS analysis).
    a_small = res_a.plateau_mhz("small", t0, t1)
    a_medium = res_a.plateau_mhz("medium", t0, t1)
    a_large = res_a.plateau_mhz("large", t0, t1)
    assert a_small > a_medium * 1.3
    # medium and large share equally per VM; large's mean sits a bit lower
    # only because compress-7zip's periodic dips drag its average down.
    assert abs(a_medium - a_large) / a_large < 0.40


def test_fig14_small_scores(once):
    res_a, res_b = once(_run_scores)
    table = {
        "small A": res_a.scores_by_group["small"],
        "small B": res_b.scores_by_group["small"],
    }
    headers, rows = scores_rows(table)
    emit(render_table(headers, rows, title="Fig. 14 — small compress scores, eval 2"))
    scores_to_csv(results_path("fig14_eval2_small_scores.csv"), table)

    small_a = res_a.scores_by_group["small"]
    small_b = res_b.scores_by_group["small"]
    # contended iterations (medium and/or large busy): B below A
    assert small_b[1:6].mean() < small_a[1:6].mean()
    # the fully-contended iteration drops to the ~1000 MHz guarantee rate
    assert small_b.min() < 1500.0
    # and nothing ever collapses below the guarantee floor
    assert small_b.min() > 0.8 * 1000.0
