"""Extension — classic migration-based management vs frequency capping.

The paper's introduction: providers either under-consolidate or "rely on
migration mechanism" when uncontrolled VMs collide; §IV-C adds that an
overcommitted placement "would reduce the performances of the VM
instances (or trigger migrations)".  This bench stages exactly that
comparison on two chetemi nodes hosting 16 large VMs (64 vCPUs,
115 200 MHz of demand — more than one node's 96 000 MHz):

* **classic**: the x1.8 vCPU-count rule consolidates 18 VMs on node 0
  and 8 on node 1, no capping; a reactive threshold policy migrates VMs
  off the overloaded node — but the cluster is nearly full, so it can
  only partially relieve the hotspot and the stuck VMs run below the
  speed their owners paid for;
* **paper**: Eq. 7 splits the VMs 13 + 13 up front, every node runs the
  controller, guarantees hold and no migration ever triggers.

The cluster is sized so *total* capacity suffices (26 x 7 200 =
187 200 <= 2 x 96 000 MHz): the comparison isolates the management
style, not raw capacity.
"""

from repro.hw.cluster import Cluster, ClusterNode
from repro.hw.nodespecs import CHETEMI
from repro.placement.bestfit import BestFit
from repro.placement.constraints import CoreSplittingConstraint
from repro.placement.evaluator import Placement
from repro.placement.migration import MigrationModel, ThresholdMigrationPolicy
from repro.placement.request import PlacementRequest, expand_requests
from repro.sim.cluster_engine import ClusterSimulation
from repro.sim.report import render_table
from repro.virt.template import LARGE
from repro.workloads.compress7zip import Compress7Zip

from conftest import emit

RUN_S = 240.0


def _cluster():
    return Cluster([ClusterNode("node-0", CHETEMI), ClusterNode("node-1", CHETEMI)])


def _requests():
    return expand_requests([(LARGE, 26)])


def _workload_for(request):
    return Compress7Zip(
        request.template.vcpus,
        iterations=100,
        work_per_iteration_mhz_s=100_000.0,
    )


def _run_classic():
    sim = ClusterSimulation(
        _cluster(),
        controlled=False,
        dt=0.5,
        migration_model=MigrationModel(link_gbps=10.0, downtime_s=1.0),
        migration_policy=ThresholdMigrationPolicy(high_watermark=1.0, patience=3),
        enforce_admission=False,
    )
    placement = Placement(cluster=_cluster())
    # x1.8 consolidation: 72 vCPUs per node -> BestFit-style fill order
    # puts 18 VMs on node-0 and the remaining 8 on node-1.
    for k, request in enumerate(_requests()):
        placement.assign("node-0" if k < 18 else "node-1", request)
    sim.deploy(placement, _workload_for)
    sim.run(RUN_S)
    return sim


def _run_paper():
    sim = ClusterSimulation(_cluster(), controlled=True, dt=0.5)
    placement = BestFit(CoreSplittingConstraint()).place(_cluster(), _requests())
    sim.deploy(placement, _workload_for)
    sim.run(RUN_S)
    return sim


def _work_done(sim):
    return sum(
        sum(s.work_mhz_s for s in vm.workload.scores)
        for vm in sim.all_vms().values()
    )


def _per_vm_mean_scores(sim):
    import numpy as np

    out = {}
    for name, vm in sim.all_vms().items():
        scores = [s.score for s in vm.workload.scores]
        out[name] = float(np.mean(scores)) if scores else 0.0
    return out


def test_migration_vs_capping(once):
    classic, paper = once(lambda: (_run_classic(), _run_paper()))

    classic_scores = _per_vm_mean_scores(classic)
    paper_scores = _per_vm_mean_scores(paper)
    rows = [
        [
            "classic (x1.8 + migrations)",
            len(classic.migrations),
            f"{_work_done(classic):,.0f}",
            f"{min(classic_scores.values()):,.0f}",
            f"{classic.total_energy_wh():.1f}",
        ],
        [
            "paper (Eq.7 + controller)",
            len(paper.migrations),
            f"{_work_done(paper):,.0f}",
            f"{min(paper_scores.values()):,.0f}",
            f"{paper.total_energy_wh():.1f}",
        ],
    ]
    emit(
        render_table(
            ["management", "migrations", "work (MHz*s)", "worst VM score", "energy (Wh)"],
            rows,
            title="26 large VMs on 2 chetemi, 240 s",
        )
    )

    # Classic management needed migrations (each with downtime); the
    # paper's placement held Eq. 7 up front so none ever triggered.
    assert len(classic.migrations) >= 1
    assert len(paper.migrations) == 0
    # The paper's promise is the *guarantee*: every VM under the
    # controller sustains roughly the 4x1800 MHz work rate it paid for,
    # while classic management leaves the VMs stuck on the hotspot below
    # it for the whole run.
    guarantee_rate = 4 * 1800.0
    assert min(paper_scores.values()) >= 0.85 * guarantee_rate
    assert min(classic_scores.values()) < min(paper_scores.values())
