"""Fail if the controller tick got slower than the committed baseline.

Compares the fresh ``benchmarks/results/BENCH_controller.json`` (written
by ``bench_scaling.py`` and ``bench_bulk.py``) against the repo-root
``BENCH_controller.json`` baseline that ships with the tree.  For every
section present in both files, every per-tick "seconds" leaf —
full-tick cost, per-stage costs including stage 1 (monitoring) and
stage 6 (enforcement), and the per-node-count sharded curve — may not
exceed the baseline by more than the tolerance (default 25%, override
with the ``PERF_TOLERANCE`` env var, e.g. ``PERF_TOLERANCE=0.40``)
plus a small absolute slack for timer noise on sub-millisecond leaves.
Scalar-engine numbers are reference points, not gates.  The 10k-VM
section carries a hard budget instead of a relative gate for its worst
tick: it must fit inside one control period regardless of baseline.

Absolute timings wobble across machines; the committed baseline is
refreshed together with any intentional perf change (see
docs/performance.md), so the diff only has to catch order-of-magnitude
slips like an accidental fall back to the scalar path.
"""

import json
import os
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "BENCH_controller.json"
FRESH = REPO_ROOT / "benchmarks" / "results" / "BENCH_controller.json"

#: gated leaves are "lower is better" per-tick timings
GATED_SUFFIXES = ("_seconds_per_tick",)

#: never gated relatively: scalar numbers are a reference point, and the
#: worst-case tick is inherently spiky — it has its own hard budget below
UNGATED_KEYS = {"scalar", "max_tick_seconds"}

#: absolute slack added on top of the relative limit (seconds) — smoke
#: sections carry sub-millisecond leaves where timer and scheduler noise
#: swamps any real 25% regression; override with ``PERF_ABS_SLACK``
ABS_SLACK_S = float(os.environ.get("PERF_ABS_SLACK", "0.002"))


def _flatten(section, prefix=""):
    """All gated timing leaves of a section as ``dotted.path -> value``."""
    out = {}
    for key, value in section.items():
        if key in UNGATED_KEYS:
            continue
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            out.update(_flatten(value, prefix=path + "."))
        elif isinstance(value, (int, float)) and path.endswith(GATED_SUFFIXES):
            out[path] = float(value)
    return out


def main() -> int:
    tolerance = float(os.environ.get("PERF_TOLERANCE", "0.25"))
    if not BASELINE.exists():
        print(f"perf check: no baseline at {BASELINE}", file=sys.stderr)
        return 1
    if not FRESH.exists():
        print(
            f"perf check: no fresh results at {FRESH} "
            "(run the engine bench first)",
            file=sys.stderr,
        )
        return 1
    baseline = json.loads(BASELINE.read_text())
    fresh = json.loads(FRESH.read_text())

    shared = sorted(set(baseline) & set(fresh))
    if not shared:
        print("perf check: no section present in both files", file=sys.stderr)
        return 1

    failures = []
    compared = 0
    for section in shared:
        base_flat = _flatten(baseline[section])
        fresh_flat = _flatten(fresh[section])
        for metric in sorted(set(base_flat) & set(fresh_flat)):
            base = base_flat[metric]
            now = fresh_flat[metric]
            limit = base * (1.0 + tolerance) + ABS_SLACK_S
            verdict = "ok" if now <= limit else "REGRESSED"
            compared += 1
            print(
                f"{section:>12} {metric:<42} baseline {base * 1e3:9.3f} ms  "
                f"now {now * 1e3:9.3f} ms  limit {limit * 1e3:9.3f} ms  "
                f"{verdict}"
            )
            if now > limit:
                failures.append((section, metric, base, now))

        # hard budget: the dense-host tick fits one control period, full stop
        if section.startswith("tick10k"):
            budget = float(fresh[section].get("control_period_s", 1.0))
            worst = float(fresh[section]["max_tick_seconds"])
            verdict = "ok" if worst < budget else "OVER BUDGET"
            print(
                f"{section:>12} {'max_tick_seconds (hard budget)':<42} "
                f"budget {budget * 1e3:9.3f} ms  "
                f"now {worst * 1e3:9.3f} ms  {verdict}"
            )
            if worst >= budget:
                failures.append((section, "max_tick_seconds", budget, worst))

    if compared == 0:
        print("perf check: no shared timing metric to compare", file=sys.stderr)
        return 1
    if failures:
        print(
            f"\nperf check FAILED: {len(failures)} metric(s) above "
            f"baseline x{1.0 + tolerance:.2f} "
            "(refresh BENCH_controller.json if the slowdown is intentional)",
            file=sys.stderr,
        )
        return 1
    print(f"\nperf check passed ({compared} metrics, tolerance {tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
