"""Fail if a gated timing got slower than its committed baseline.

Compares each fresh ``benchmarks/results/BENCH_*.json`` (written by the
benches) against the matching repo-root ``BENCH_*.json`` baseline that
ships with the tree — ``BENCH_controller.json`` for the engine benches
(``bench_scaling.py``, ``bench_bulk.py``, ``bench_cluster_scale.py``'s
node curve), ``BENCH_rebalance.json`` for the rebalance control plane
(``bench_rebalance.py``, ``bench_cluster_scale.py``'s chaos1000),
``BENCH_slo.json`` for the SLO plane's cluster scrape
(``bench_slo_overhead.py``).  A pair is only
checked when both files exist, so each smoke target gates just its own
bench; at least one pair must be comparable.  For every section present
in both files of a pair, every gated "lower is better" timing leaf —
per-tick engine costs, the rebalance planner's per-round cost — may not
exceed the baseline by more than the tolerance (default 25%, override
with the ``PERF_TOLERANCE`` env var, e.g. ``PERF_TOLERANCE=0.40``)
plus a small absolute slack for timer noise on sub-millisecond leaves.
Scalar-engine numbers are reference points, not gates.  Three sections
carry hard budgets on top of the relative gates — they must fit inside
one control period regardless of baseline: the 10k-VM tick's worst
tick (``tick10k``), the 1000-node control loop's snapshot+plan p50
(``chaos1000``), the sharded/shared-memory cluster tick at the node
curve's largest point (``node_curve``), and the SLO plane's
ingest+evaluate scrape p50 (``slo1000`` / ``slo_smoke``).

Absolute timings wobble across machines; the committed baselines are
refreshed together with any intentional perf change (see
docs/performance.md), so the diff only has to catch order-of-magnitude
slips like an accidental fall back to the scalar path.
"""

import json
import os
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = REPO_ROOT / "benchmarks" / "results"

#: (committed baseline, fresh results) pairs; checked when both exist
PAIRS = [
    (REPO_ROOT / "BENCH_controller.json", RESULTS / "BENCH_controller.json"),
    (REPO_ROOT / "BENCH_rebalance.json", RESULTS / "BENCH_rebalance.json"),
    (REPO_ROOT / "BENCH_slo.json", RESULTS / "BENCH_slo.json"),
]

#: gated leaves are "lower is better" timings
GATED_SUFFIXES = ("_seconds_per_tick", "_seconds_per_round")

#: never gated relatively: scalar numbers are a reference point, and the
#: worst-case tick is inherently spiky — it has its own hard budget below
UNGATED_KEYS = {"scalar", "max_tick_seconds"}

#: absolute slack added on top of the relative limit (seconds) — smoke
#: sections carry sub-millisecond leaves where timer and scheduler noise
#: swamps any real 25% regression; override with ``PERF_ABS_SLACK``
ABS_SLACK_S = float(os.environ.get("PERF_ABS_SLACK", "0.002"))


def _flatten(section, prefix=""):
    """All gated timing leaves of a section as ``dotted.path -> value``."""
    out = {}
    for key, value in section.items():
        if key in UNGATED_KEYS:
            continue
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            out.update(_flatten(value, prefix=path + "."))
        elif isinstance(value, (int, float)) and path.endswith(GATED_SUFFIXES):
            out[path] = float(value)
    return out


def _check_pair(baseline_path, fresh_path, tolerance, failures):
    """Compare one baseline/fresh file pair; returns metrics compared."""
    baseline = json.loads(baseline_path.read_text())
    fresh = json.loads(fresh_path.read_text())

    shared = sorted(set(baseline) & set(fresh))
    compared = 0
    for section in shared:
        base_flat = _flatten(baseline[section])
        fresh_flat = _flatten(fresh[section])
        for metric in sorted(set(base_flat) & set(fresh_flat)):
            base = base_flat[metric]
            now = fresh_flat[metric]
            limit = base * (1.0 + tolerance) + ABS_SLACK_S
            verdict = "ok" if now <= limit else "REGRESSED"
            compared += 1
            print(
                f"{section:>12} {metric:<42} baseline {base * 1e3:9.3f} ms  "
                f"now {now * 1e3:9.3f} ms  limit {limit * 1e3:9.3f} ms  "
                f"{verdict}"
            )
            if now > limit:
                failures.append((section, metric, base, now))

        # hard budgets: these fit one control period, full stop
        budget_leaves = []
        if section.startswith("tick10k"):
            budget_leaves.append("max_tick_seconds")
        if section.startswith("chaos1000"):
            budget_leaves.append("view_plan_p50_seconds_per_round")
        if section.startswith("node_curve"):
            budget_leaves.append("sharded_shm_max_tick_seconds")
        if section.startswith("slo"):
            budget_leaves.append("observe_p50_seconds_per_tick")
        for leaf in budget_leaves:
            budget = float(fresh[section].get("control_period_s", 1.0))
            worst = float(fresh[section][leaf])
            verdict = "ok" if worst < budget else "OVER BUDGET"
            print(
                f"{section:>12} {leaf + ' (hard budget)':<42} "
                f"budget {budget * 1e3:9.3f} ms  "
                f"now {worst * 1e3:9.3f} ms  {verdict}"
            )
            if worst >= budget:
                failures.append((section, leaf, budget, worst))
    return compared


def main() -> int:
    tolerance = float(os.environ.get("PERF_TOLERANCE", "0.25"))
    failures = []
    compared = 0
    checked = 0
    for baseline_path, fresh_path in PAIRS:
        if not fresh_path.exists():
            continue  # this bench didn't run; its gate doesn't apply
        if not baseline_path.exists():
            print(
                f"perf check: fresh results at {fresh_path} but no committed "
                f"baseline at {baseline_path}",
                file=sys.stderr,
            )
            return 1
        checked += 1
        compared += _check_pair(baseline_path, fresh_path, tolerance, failures)

    if checked == 0:
        print(
            "perf check: no fresh results under benchmarks/results/ "
            "(run a bench first)",
            file=sys.stderr,
        )
        return 1
    if compared == 0:
        print("perf check: no shared timing metric to compare", file=sys.stderr)
        return 1
    if failures:
        print(
            f"\nperf check FAILED: {len(failures)} metric(s) above "
            f"baseline x{1.0 + tolerance:.2f} "
            "(refresh the committed BENCH_*.json baseline if the slowdown "
            "is intentional)",
            file=sys.stderr,
        )
        return 1
    print(f"\nperf check passed ({compared} metrics, tolerance {tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
