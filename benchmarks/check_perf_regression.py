"""Fail if the controller tick got slower than the committed baseline.

Compares the fresh ``benchmarks/results/BENCH_controller.json`` (written
by the engine-comparison bench) against the repo-root
``BENCH_controller.json`` baseline that ships with the tree.  For every
section present in both files ("smoke" from the CI gate, "full" from a
developer refresh) the vectorised per-tick costs may not exceed the
baseline by more than the tolerance (default 25%, override with the
``PERF_TOLERANCE`` env var, e.g. ``PERF_TOLERANCE=0.40``).

Absolute timings wobble across machines; the committed baseline is
refreshed together with any intentional perf change (see
docs/performance.md), so the diff only has to catch order-of-magnitude
slips like an accidental fall back to the scalar path.
"""

import json
import os
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "BENCH_controller.json"
FRESH = REPO_ROOT / "benchmarks" / "results" / "BENCH_controller.json"

#: metrics compared per section, all "lower is better" seconds/tick
METRICS = ("total_seconds_per_tick", "stage2_5_seconds_per_tick")


def main() -> int:
    tolerance = float(os.environ.get("PERF_TOLERANCE", "0.25"))
    if not BASELINE.exists():
        print(f"perf check: no baseline at {BASELINE}", file=sys.stderr)
        return 1
    if not FRESH.exists():
        print(
            f"perf check: no fresh results at {FRESH} "
            "(run the engine bench first)",
            file=sys.stderr,
        )
        return 1
    baseline = json.loads(BASELINE.read_text())
    fresh = json.loads(FRESH.read_text())

    shared = sorted(set(baseline) & set(fresh))
    if not shared:
        print("perf check: no section present in both files", file=sys.stderr)
        return 1

    failures = []
    for section in shared:
        base_vec = baseline[section]["vectorized"]
        fresh_vec = fresh[section]["vectorized"]
        for metric in METRICS:
            base = base_vec[metric]
            now = fresh_vec[metric]
            limit = base * (1.0 + tolerance)
            verdict = "ok" if now <= limit else "REGRESSED"
            print(
                f"{section:>6} {metric:<28} baseline {base * 1e3:8.3f} ms  "
                f"now {now * 1e3:8.3f} ms  limit {limit * 1e3:8.3f} ms  "
                f"{verdict}"
            )
            if now > limit:
                failures.append((section, metric, base, now))

    if failures:
        print(
            f"\nperf check FAILED: {len(failures)} metric(s) above "
            f"baseline x{1.0 + tolerance:.2f} "
            "(refresh BENCH_controller.json if the slowdown is intentional)",
            file=sys.stderr,
        )
        return 1
    print(f"\nperf check passed (tolerance {tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
