"""Ablation — cache contention and the §V cache-aware extension.

The paper's §IV-B2 observes a small performance drop for large instances
beyond what cycle allocation explains and names cache allocation as the
likely cause, proposing cache-aware vCPU priority as future work.  This
bench (a) reproduces that observation by enabling the LLC contention
model on the eval-2 scenario, and (b) measures the proposed extension:
ordering the auction by guaranteed frequency instead of credits, so the
burst cycles concentrate on fewer, faster vCPUs and oversubscription —
hence cache pressure — drops.
"""

from dataclasses import replace

import numpy as np

from repro.core.config import ControllerConfig
from repro.sim.report import render_table
from repro.sim.scenario import eval2_chetemi

from conftest import emit

SCALE = 0.2


def _run(cache_alpha, auction_priority):
    scenario = eval2_chetemi(
        duration=3500.0, time_scale=SCALE, dt=0.5, run_to_completion=True
    )
    scenario.cache_alpha = cache_alpha
    scenario.controller_config = replace(
        ControllerConfig.paper_evaluation(), auction_priority=auction_priority
    )
    return scenario.run(controlled=True)


def _sweep():
    return {
        "no cache model": _run(0.0, "credits"),
        "cache, Alg.1 auction": _run(0.15, "credits"),
        "cache, freq-priority": _run(0.15, "frequency"),
    }


def test_cache_contention_ablation(once):
    results = once(_sweep)

    rows = []
    for label, res in results.items():
        large = res.scores_by_group["large"]
        small = res.scores_by_group["small"]
        rows.append(
            [
                label,
                f"{np.nanmean(large):,.0f}",
                f"{np.nanmean(small):,.0f}",
            ]
        )
    emit(
        render_table(
            ["configuration", "large mean score", "small mean score"],
            rows,
            title="Ablation: LLC contention + cache-aware auction (eval 2)",
        )
    )

    base = np.nanmean(results["no cache model"].scores_by_group["large"])
    contended = np.nanmean(results["cache, Alg.1 auction"].scores_by_group["large"])
    aware = np.nanmean(results["cache, freq-priority"].scores_by_group["large"])

    # (a) the paper's observation: cache pressure shaves large's scores
    assert contended < base
    # (b) the proposed extension must not make things worse for the
    # high-frequency class it is meant to protect
    assert aware >= contended * 0.97
