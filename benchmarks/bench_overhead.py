"""§IV-A2 — controller overhead.

The paper's C++ controller takes ~5 ms per 1 s iteration on chetemi
(30 VMs / 80 vCPUs), of which ~4 ms is the monitoring stage.  This bench
measures our Python controller's per-iteration wall time on the same VM
population and reports the stage split.  Absolute numbers differ
(Python, simulated files); the *shape* to reproduce is that monitoring
dominates and the whole iteration is a tiny fraction of the period.
"""

import numpy as np

from repro.sim.report import render_table
from repro.sim.scenario import eval1_chetemi

from conftest import emit


def _loaded_sim():
    """An eval-1 chetemi host in the contended phase."""
    sim = eval1_chetemi(duration=1.0, dt=0.5).build(controlled=True)
    for vm in sim.hypervisor.vms:
        vm.workload.start_time = 0.0  # everyone busy immediately
    sim.run(10.0)  # warm: histories, caps, wallets all populated
    return sim


def test_controller_iteration_overhead(benchmark):
    sim = _loaded_sim()
    controller = sim.controller
    controller.keep_reports = False

    def one_iteration():
        sim.node.step(0.5)  # keep consumption flowing between ticks
        return controller.tick(sim.t)

    report = benchmark(one_iteration)

    t = report.timings
    rows = [
        ["monitoring (stage 1)", f"{t.monitor * 1e3:.3f} ms", "~4 ms (C++)"],
        ["estimate (stage 2)", f"{t.estimate * 1e3:.3f} ms", ""],
        ["credits (stage 3)", f"{t.credits * 1e3:.3f} ms", ""],
        ["auction (stage 4)", f"{t.auction * 1e3:.3f} ms", ""],
        ["distribute (stage 5)", f"{t.distribute * 1e3:.3f} ms", ""],
        ["enforce (stage 6)", f"{t.enforce * 1e3:.3f} ms", ""],
        ["total", f"{t.total * 1e3:.3f} ms", "~5 ms (C++)"],
    ]
    emit(render_table(["stage", "this run", "paper"], rows, title="Controller overhead, 30 VMs / 80 vCPUs"))

    # Shape: an iteration costs a negligible fraction of the 1 s period.
    assert t.total < 0.1 * controller.config.period_s


def test_monitoring_dominates(benchmark):
    """Average over many iterations: stage 1 is the most expensive stage,
    as the paper reports for the C++ implementation."""
    sim = _loaded_sim()
    controller = sim.controller
    controller.keep_reports = True
    controller.reports.clear()

    def iterations():
        for _ in range(10):
            sim.node.step(0.5)
            controller.tick(sim.t)
        return controller.reports[-10:]

    reports = benchmark.pedantic(iterations, rounds=1, iterations=1)
    means = {
        stage: float(np.mean([getattr(r.timings, stage) for r in reports]))
        for stage in ("monitor", "estimate", "credits", "auction", "distribute", "enforce")
    }
    emit(
        render_table(
            ["stage", "mean ms"],
            [[k, f"{v * 1e3:.3f}"] for k, v in means.items()],
            title="Per-stage mean over 10 iterations",
        )
    )
    assert means["monitor"] == max(means.values())
