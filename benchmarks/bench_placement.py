"""§IV-C — the placement study.

Cluster: 12 chetemi + 10 chiclet.  Workload: 250 small + 50 medium +
100 large (1 210 000 MHz of guaranteed demand).

Paper numbers:
* frequency-aware BestFit (Eq. 7): 15 / 22 nodes used (our BFD variant
  packs tighter — <= 15), 7+ nodes free for shutdown;
* vCPU-count BestFit: all 22 nodes;
* vCPU-count with consolidation x1.8: 15 nodes, but Eq. 7 violated on
  the hottest nodes (36 small on a chetemi — exactly the paper's count).
"""

from repro.hw.cluster import Cluster
from repro.placement.bestfit import BestFit
from repro.placement.constraints import CoreSplittingConstraint, VcpuCountConstraint
from repro.placement.evaluator import evaluate, nodes_by_spec_used
from repro.placement.firstfit import FirstFit
from repro.placement.request import paper_workload

from conftest import emit


def _run_all():
    cluster = Cluster.paper_cluster()
    requests = paper_workload()
    algos = {
        "BestFit + Eq.7 (paper B)": BestFit(CoreSplittingConstraint()),
        "BestFit + vCPU count": BestFit(VcpuCountConstraint()),
        "BestFit + vCPU x1.8": BestFit(VcpuCountConstraint(consolidation_factor=1.8)),
        "FirstFit + Eq.7": FirstFit(CoreSplittingConstraint()),
    }
    return {
        label: algo.place(cluster, requests) for label, algo in algos.items()
    }


def test_placement_study(once):
    placements = once(_run_all)

    rows = []
    for label, placement in placements.items():
        stats = evaluate(placement)
        by_spec = nodes_by_spec_used(placement)
        rows.append(
            [
                label,
                f"{stats.nodes_used}/{stats.nodes_total}",
                stats.unplaced,
                f"{stats.max_mhz_load_fraction:.2f}",
                f"{stats.idle_power_saved_w:.0f} W",
                f"{by_spec.get('chetemi', 0)}+{by_spec.get('chiclet', 0)}",
            ]
        )
    emit(
        render_header_rows(rows)
    )

    eq7 = evaluate(placements["BestFit + Eq.7 (paper B)"])
    count = evaluate(placements["BestFit + vCPU count"])
    conso = evaluate(placements["BestFit + vCPU x1.8"])

    assert eq7.unplaced == 0
    assert eq7.nodes_used <= 15  # paper: 15
    assert eq7.nodes_free >= 7  # paper: 7 nodes reusable/shutdown
    assert eq7.max_mhz_load_fraction <= 1.0 + 1e-9

    assert count.nodes_used == 22  # paper: all nodes needed

    assert conso.nodes_used == 15  # paper: same node count as Eq. 7 ...
    assert conso.max_mhz_load_fraction > 1.0  # ... but guarantees broken
    p18 = placements["BestFit + vCPU x1.8"]
    assert p18.max_vms_of_template_on_spec("small", "chetemi") == 36  # paper: 36


def render_header_rows(rows):
    from repro.sim.report import render_table

    return render_table(
        ["algorithm", "nodes used", "unplaced", "max MHz load", "idle W saved", "chetemi+chiclet"],
        rows,
        title="§IV-C placement study",
    )
