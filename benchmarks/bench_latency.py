"""Extension — tail latency of the paper's motivating low tier.

The paper's "personal website" example is exactly the workload whose
owner feels *response time*.  One web VM (2 vCPU @ 500 MHz, modest
request rate) shares a contended tiny-node with saturating batch VMs.
Three management regimes serve the identical request stream:

* **VF controller** (paper): the web VM's 500 MHz guarantee bounds its
  queueing delay no matter how greedy the neighbours are;
* **stock CFS**: per-VM fair share still gives the web VM plenty here —
  the failure mode is *unpredictability* across consolidation levels,
  so we report two neighbour counts;
* **burst VM, credits exhausted**: the EC2-style baseline pins the web
  VM at 10 % of a core; the queue never drains and p99 explodes — the
  §II criticism in the unit customers actually experience.
"""

import numpy as np

from repro.cgroups.cpu import QuotaSpec
from repro.sim.engine import Simulation
from repro.sim.report import render_table
from repro.virt.template import VMTemplate
from repro.workloads.base import attach
from repro.workloads.synthetic import ConstantWorkload
from repro.workloads.webserver import WebServerWorkload
from tests.conftest import make_host

from conftest import emit

WEB = VMTemplate("web", vcpus=2, vfreq_mhz=500.0)
BATCH = VMTemplate("batch", vcpus=1, vfreq_mhz=2000.0)
RUN_S = 120.0
RPS = 3.0
REQ_WORK = 250.0  # MHz*s per request: ~0.5 ms at 500 MHz x 1 vCPU... scaled


def _web_workload():
    return WebServerWorkload(
        2, rps=RPS, work_per_request_mhz_s=REQ_WORK, seed=17
    )


def _host(num_batch, config=None):
    node, hv, ctrl = make_host(config=config)
    web = hv.provision(WEB, "web")
    attach(web, _web_workload())
    for k in range(num_batch):
        vm = hv.provision(BATCH, f"batch-{k}")
        attach(vm, ConstantWorkload(1, level=1.0))
    return node, hv, ctrl, web


def _run_controller(num_batch=4, *, reserve=False):
    from dataclasses import replace

    from repro.core.config import ControllerConfig

    cfg = replace(
        ControllerConfig.paper_evaluation(), reserve_guarantee=reserve
    )
    node, hv, ctrl, web = _host(num_batch, config=cfg)
    ctrl.register_vm("web", WEB.vfreq_mhz)
    for k in range(num_batch):
        ctrl.register_vm(f"batch-{k}", BATCH.vfreq_mhz)
    sim = Simulation(node, hv, controller=ctrl, dt=0.25)
    sim.run(RUN_S)
    return web.workload


def _run_cfs(num_batch):
    node, hv, _, web = _host(num_batch)
    sim = Simulation(node, hv, dt=0.25)
    sim.run(RUN_S)
    return web.workload


def _run_burst_broke(num_batch=4):
    """Burst baseline with credits gone: hard 10 % cap per vCPU."""
    node, hv, _, web = _host(num_batch)
    for vcpu in web.vcpus:
        node.fs.set_quota(vcpu.cgroup_path, QuotaSpec(10_000, 100_000))
    sim = Simulation(node, hv, dt=0.25)
    sim.run(RUN_S)
    return web.workload


def test_web_tail_latency(once):
    results = once(
        lambda: {
            "VF controller (paper)": _run_controller(),
            "VF controller (reserved ext.)": _run_controller(reserve=True),
            "stock CFS, 4 neighbours": _run_cfs(4),
            "burst VM, no credits": _run_burst_broke(),
        }
    )

    rows = []
    for label, w in results.items():
        rows.append(
            [
                label,
                w.served,
                f"{w.mean_ms():.1f}",
                f"{w.percentile_ms(99):.1f}",
                w.queue_depth,
            ]
        )
    emit(
        render_table(
            ["regime", "served", "mean ms", "p99 ms", "still queued"],
            rows,
            title=f"Web VM tail latency, {RPS:.0f} rps for {RUN_S:.0f} s, contended node",
        )
    )

    ctrl_w = results["VF controller (paper)"]
    reserved_w = results["VF controller (reserved ext.)"]
    cfs_w = results["stock CFS, 4 neighbours"]
    burst_w = results["burst VM, no credits"]

    # 1. the broke burst VM cannot drain its queue: p99 an order of
    # magnitude (or more) above every other regime (§II in latency units)
    assert burst_w.percentile_ms(99) > 10 * ctrl_w.percentile_ms(99)
    assert burst_w.queue_depth > 10
    # 2. all non-burst regimes drain the queue
    assert ctrl_w.queue_depth <= 2
    assert reserved_w.queue_depth <= 2
    # 3. honest finding: the paper's trigger ramp costs the bursty web VM
    # tail latency vs stock CFS at this consolidation level ...
    assert ctrl_w.percentile_ms(99) > cfs_w.percentile_ms(99)
    # 4. ... and the reserved-guarantee extension wins most of it back
    assert reserved_w.percentile_ms(99) < 0.5 * ctrl_w.percentile_ms(99)
